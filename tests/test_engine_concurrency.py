"""Engine-level tests of the lock-free / striped concurrency model.

The engine's SI read path takes no lock at all (DESIGN.md §9), so these
tests attack exactly the guarantees that design leans on:

* commits become visible *atomically* — a concurrent snapshot reader can
  never observe half of a transaction's writes (torn commit);
* writers contending on striped row latches never lose a lock hand-off or
  an update;
* :meth:`Database.vacuum` never changes what any live snapshot sees;
* the group-commit WAL keeps records in commit-timestamp order and every
  acknowledged commit durable;
* the supporting caches (sorted scan keys, schema lookups) stay correct
  while being mutated concurrently.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine import Column, Database, EngineConfig, TableSchema
from repro.engine.engine import WaitOn
from repro.engine.storage import Table
from repro.engine.versions import Version, VersionChain
from repro.engine.wal import GroupCommitBuffer, WalRecord, WriteAheadLog
from repro.errors import (
    DatabaseCrashed,
    IntegrityError,
    SchemaError,
    SerializationFailure,
    TransactionAborted,
)

ACCOUNTS = TableSchema(
    name="Accounts",
    columns=(Column("Id", "int"), Column("Balance", "numeric")),
    primary_key="Id",
)


def make_db(config: EngineConfig | None = None, rows: int = 2) -> Database:
    db = Database([ACCOUNTS], config or EngineConfig.postgres())
    for i in range(rows):
        db.load_row("Accounts", {"Id": i, "Balance": 500.0})
    return db


def transfer_forever(
    db: Database, src: int, dst: int, rounds: int, failures: list
) -> None:
    """Move 1.0 from src to dst, ``rounds`` committed times, retrying
    serialization losses and lock waits as fresh transactions."""
    committed = 0
    while committed < rounds:
        txn = db.begin("transfer")
        try:
            a = db.read(txn, "Accounts", src)
            b = db.read(txn, "Accounts", dst)
            for key, row in ((src, a), (dst, b)):
                delta = -1.0 if key == src else 1.0
                result = db.write(
                    txn,
                    "Accounts",
                    key,
                    {"Id": key, "Balance": row["Balance"] + delta},
                )
                if isinstance(result, WaitOn):
                    raise _Blocked()
            db.commit(txn)
            committed += 1
        except _Blocked:
            db.abort(txn)
        except (SerializationFailure, TransactionAborted):
            pass  # engine already aborted the transaction
        except BaseException as exc:  # pragma: no cover - diagnostics
            failures.append(exc)
            db.abort(txn)
            return


class _Blocked(Exception):
    pass


# ----------------------------------------------------------------------
# Torn-commit / snapshot-atomicity
# ----------------------------------------------------------------------
class TestSnapshotAtomicity:
    def test_readers_never_see_torn_commits(self) -> None:
        """A transfer writes two rows; the sum must be invariant in every
        snapshot, no matter how reads race the publication."""
        db = make_db()
        failures: list = []
        stop = threading.Event()
        torn: list = []

        def auditor() -> None:
            while not stop.is_set():
                txn = db.begin("audit")
                a = db.read(txn, "Accounts", 0)
                b = db.read(txn, "Accounts", 1)
                total = a["Balance"] + b["Balance"]
                if abs(total - 1000.0) > 1e-9:
                    torn.append((txn.snapshot_ts, total))
                db.commit(txn)

        writer = threading.Thread(
            target=transfer_forever, args=(db, 0, 1, 300, failures)
        )
        auditors = [threading.Thread(target=auditor) for _ in range(3)]
        writer.start()
        for t in auditors:
            t.start()
        writer.join(timeout=60)
        stop.set()
        for t in auditors:
            t.join(timeout=60)
        assert not failures, failures
        assert not torn, f"torn snapshots observed: {torn[:5]}"
        assert not writer.is_alive()

    def test_repeated_reads_stable_while_writers_commit(self) -> None:
        """An SI transaction re-reading a row always gets its snapshot's
        version even as newer versions are published concurrently."""
        db = make_db()
        reader = db.begin("pin")
        before = db.read(reader, "Accounts", 0)["Balance"]
        failures: list = []
        writer = threading.Thread(
            target=transfer_forever, args=(db, 0, 1, 100, failures)
        )
        writer.start()
        for _ in range(200):
            assert db.read(reader, "Accounts", 0)["Balance"] == before
        writer.join(timeout=60)
        assert not failures, failures
        assert db.read(reader, "Accounts", 0)["Balance"] == before
        fresh = db.begin("after")
        assert db.read(fresh, "Accounts", 0)["Balance"] == before - 100.0


# ----------------------------------------------------------------------
# Striped write locks
# ----------------------------------------------------------------------
class TestStripedWriters:
    def test_contended_increments_are_never_lost(self) -> None:
        """Many threads increment one hot row; the final balance counts
        every acknowledged commit exactly once (no lost lock hand-off)."""
        db = make_db(rows=1)
        threads = 6
        rounds = 40
        failures: list = []

        def bump() -> None:
            committed = 0
            while committed < rounds:
                txn = db.begin("bump")
                try:
                    row = db.read(txn, "Accounts", 0)
                    result = db.write(
                        txn,
                        "Accounts",
                        0,
                        {"Id": 0, "Balance": row["Balance"] + 1.0},
                    )
                    if isinstance(result, WaitOn):
                        db.abort(txn)
                        continue
                    db.commit(txn)
                    committed += 1
                except (SerializationFailure, TransactionAborted):
                    pass
                except BaseException as exc:  # pragma: no cover
                    failures.append(exc)
                    return

        pool = [threading.Thread(target=bump) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join(timeout=120)
            assert not t.is_alive(), "incrementer hung"
        assert not failures, failures
        txn = db.begin("check")
        assert db.read(txn, "Accounts", 0)["Balance"] == pytest.approx(
            500.0 + threads * rounds
        )

    def test_single_stripe_still_correct(self) -> None:
        """stripes=1 degenerates to one writer latch but must stay correct
        (and SI reads still take no latch at all)."""
        from dataclasses import replace

        db = Database(
            [ACCOUNTS], replace(EngineConfig.postgres(), stripes=1)
        )
        for i in range(2):
            db.load_row("Accounts", {"Id": i, "Balance": 500.0})
        failures: list = []
        transfer_forever(db, 0, 1, 25, failures)
        assert not failures
        txn = db.begin("check")
        assert db.read(txn, "Accounts", 0)["Balance"] == 475.0
        assert db.read(txn, "Accounts", 1)["Balance"] == 525.0

    def test_vanished_blockers_mean_retry_not_error(self) -> None:
        db = make_db()
        assert db._wait_on(frozenset({424242})) is None


# ----------------------------------------------------------------------
# Vacuum
# ----------------------------------------------------------------------
class TestVacuum:
    def _commit_balance(self, db: Database, key: int, balance: float) -> None:
        txn = db.begin("w")
        db.write(txn, "Accounts", key, {"Id": key, "Balance": balance})
        db.commit(txn)

    def test_vacuum_preserves_live_snapshot_visibility(self) -> None:
        db = make_db(rows=1)
        for balance in (510.0, 520.0, 530.0):
            self._commit_balance(db, 0, balance)
        pinned = db.begin("pinned")  # sees 530.0
        seen_before = db.read(pinned, "Accounts", 0)["Balance"]
        for balance in (540.0, 550.0):
            self._commit_balance(db, 0, balance)

        chain = db.catalog.table("Accounts").chain(0)
        length_before = len(chain)
        pruned = db.vacuum()

        # Everything older than the pinned snapshot's version is gone ...
        assert pruned > 0
        assert len(chain) == length_before - pruned
        # ... but the pinned snapshot still reads exactly what it read.
        fresh_reader = db.begin("r2")
        assert db.read(pinned, "Accounts", 0)["Balance"] == seen_before
        assert db.read(fresh_reader, "Accounts", 0)["Balance"] == 550.0

    def test_vacuum_with_no_active_txns_keeps_newest(self) -> None:
        db = make_db(rows=1)
        for balance in (510.0, 520.0):
            self._commit_balance(db, 0, balance)
        chain = db.catalog.table("Accounts").chain(0)
        assert len(chain) == 3  # bootstrap + two updates
        assert db.vacuum() == 2
        assert len(chain) == 1
        txn = db.begin("r")
        assert db.read(txn, "Accounts", 0)["Balance"] == 520.0

    def test_vacuum_is_idempotent(self) -> None:
        db = make_db(rows=1)
        self._commit_balance(db, 0, 777.0)
        assert db.vacuum() == 1
        assert db.vacuum() == 0

    def test_chain_prune_units(self) -> None:
        chain = VersionChain()
        assert chain.prune(10) == 0  # empty
        for ts in (2, 4, 6):
            chain.append_committed(Version(ts, txid=1, value={"v": ts}))
        assert chain.prune(1) == 0  # nothing at/below horizon: keep all
        assert chain.prune(5) == 1  # drops ts=2, keeps ts=4 (visible) + 6
        assert [v.commit_ts for v in chain.committed] == [4, 6]
        assert chain.visible(5).commit_ts == 4
        assert chain.prune(100) == 1  # only the newest survives
        assert [v.commit_ts for v in chain.committed] == [6]

    def test_pruned_list_is_replaced_not_mutated(self) -> None:
        chain = VersionChain()
        for ts in (1, 2, 3):
            chain.append_committed(Version(ts, txid=1, value={"v": ts}))
        held = chain._committed  # what an in-flight reader would hold
        chain.prune(3)
        assert [v.commit_ts for v in held] == [1, 2, 3]  # reader unharmed


# ----------------------------------------------------------------------
# Group commit / WAL ordering
# ----------------------------------------------------------------------
class TestGroupCommit:
    def test_concurrent_commits_keep_wal_ordered_and_durable(self) -> None:
        db = make_db(rows=8)
        failures: list = []
        pool = [
            threading.Thread(
                target=transfer_forever,
                args=(db, i, (i + 1) % 8, 20, failures),
            )
            for i in range(4)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join(timeout=120)
            assert not t.is_alive()
        assert not failures, failures
        timestamps = [r.commit_ts for r in db.wal]
        assert timestamps == sorted(timestamps)
        assert len(set(timestamps)) == len(timestamps)
        assert db.wal.unflushed_count == 0  # every ack'd commit is durable
        assert len(db.wal) == 4 * 20

    def test_group_commit_leader_covers_followers(self) -> None:
        wal = WriteAheadLog()
        buffer = GroupCommitBuffer()
        first = WalRecord(commit_ts=1, txid=1, label="a", rows=())
        second = WalRecord(commit_ts=2, txid=2, label="b", rows=())
        buffer.stage(first)
        buffer.stage(second)
        buffer.sync(wal, second)  # leader drains both and flushes once
        assert [r.commit_ts for r in wal.durable_records] == [1, 2]
        buffer.sync(wal, first)  # follower: already durable, no-op
        assert len(wal) == 2

    def test_sync_raises_when_record_lost_to_crash(self) -> None:
        wal = WriteAheadLog()
        buffer = GroupCommitBuffer()
        record = WalRecord(commit_ts=1, txid=1, label="a", rows=())
        buffer.stage(record)
        buffer.spill_unflushed(wal)  # crash path: append without flush
        wal.truncate_to_flushed()
        with pytest.raises(DatabaseCrashed):
            buffer.sync(wal, record)

    def test_unique_violation_at_commit_publishes_nothing(self) -> None:
        """Commit-time validation happens before publication: a unique
        violation leaves no versions, no WAL record and no timestamp."""
        schema = TableSchema(
            name="T",
            columns=(Column("Id", "int"), Column("U", "int")),
            primary_key="Id",
            unique=("U",),
        )
        db = Database([schema], EngineConfig.postgres())
        db.load_row("T", {"Id": 1, "U": 7})
        txn = db.begin("dup")
        db.insert(txn, "T", {"Id": 2, "U": 7})
        ts_before = db.clock.last
        with pytest.raises(IntegrityError):
            db.commit(txn)
        assert db.clock.last == ts_before  # no tick consumed
        assert len(db.wal) == 0
        chain = db.catalog.table("T").chain(2)
        assert chain is None or len(chain) == 0  # nothing published


# ----------------------------------------------------------------------
# Caches: sorted scan keys and schema lookups
# ----------------------------------------------------------------------
class TestCaches:
    def test_sorted_keys_cache_reuses_tuple_until_insert(self) -> None:
        table = Table(ACCOUNTS)
        db = make_db(rows=3)
        accounts = db.catalog.table("Accounts")
        first = accounts.sorted_keys()
        assert accounts.sorted_keys() is first  # cache hit, same object
        txn = db.begin("ins")
        db.insert(txn, "Accounts", {"Id": 99, "Balance": 1.0})
        db.commit(txn)
        rebuilt = accounts.sorted_keys()
        assert rebuilt is not first
        assert 99 in rebuilt
        assert list(rebuilt) == sorted(rebuilt, key=repr)
        assert table.sorted_keys() == ()  # empty table: empty cache

    def test_scan_sees_concurrent_inserts_eventually(self) -> None:
        db = make_db(rows=2)
        txn = db.begin("ins")
        db.insert(txn, "Accounts", {"Id": 50, "Balance": 9.0})
        db.commit(txn)
        fresh = db.begin("scan")
        keys = [key for key, _ in db.scan(fresh, "Accounts")]
        assert keys == sorted([0, 1, 50], key=repr)

    def test_schema_lookups_are_memoized(self) -> None:
        assert ACCOUNTS.column_names is ACCOUNTS.column_names  # same tuple
        assert ACCOUNTS.column_name_set == frozenset({"Id", "Balance"})
        assert ACCOUNTS.column("Balance").kind == "numeric"
        with pytest.raises(SchemaError):
            ACCOUNTS.column("Nope")

    def test_validate_row_reports_extra_and_missing(self) -> None:
        with pytest.raises(SchemaError):
            ACCOUNTS.validate_row({"Id": 1, "Balance": 1.0, "Bogus": 2})
        with pytest.raises(IntegrityError):
            ACCOUNTS.validate_row({"Id": 1})
        assert ACCOUNTS.validate_row({"Id": 1, "Balance": 1.0}) == {
            "Id": 1,
            "Balance": 1.0,
        }
