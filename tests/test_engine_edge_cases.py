"""Engine edge cases: delete/reinsert cycles, SFU corners, config presets."""

from __future__ import annotations

import pytest

from repro.engine import (
    Database,
    EngineConfig,
    IsolationLevel,
    Session,
    SfuSemantics,
    WaitOn,
    WriteConflictPolicy,
)
from repro.engine.transaction import TxnStatus
from repro.errors import SerializationFailure


class TestConfigPresets:
    def test_postgres_preset(self):
        config = EngineConfig.postgres()
        assert config.isolation is IsolationLevel.SI
        assert config.write_conflict is WriteConflictPolicy.FIRST_UPDATER_WINS
        assert config.sfu is SfuSemantics.LOCK_ONLY

    def test_commercial_preset(self):
        config = EngineConfig.commercial()
        assert config.sfu is SfuSemantics.CC_WRITE

    def test_presets_are_frozen_and_comparable(self):
        assert EngineConfig.postgres() == EngineConfig.postgres()
        assert EngineConfig.postgres() != EngineConfig.commercial()
        with pytest.raises(AttributeError):
            EngineConfig.postgres().isolation = IsolationLevel.S2PL


class TestDeleteReinsert:
    def test_delete_then_reinsert_same_key(self, db: Database):
        session = Session(db)
        session.begin()
        session.delete("Account", "cust1")
        session.insert("Account", {"Name": "cust1", "CustomerId": 77})
        session.commit()
        check = Session(db)
        check.begin()
        assert check.select("Account", "cust1")["CustomerId"] == 77

    def test_reinsert_after_committed_delete(self, db: Database):
        first = Session(db)
        first.begin()
        first.delete("Account", "cust1")
        first.commit()
        second = Session(db)
        second.begin()
        second.insert("Account", {"Name": "cust1", "CustomerId": 88})
        second.commit()
        chain = db.catalog.table("Account").chain("cust1")
        # bootstrap + tombstone + reinsert.
        assert len(chain) == 3

    def test_concurrent_insert_same_key_conflicts(self, db: Database):
        t1 = db.begin()
        t2 = db.begin()
        assert db.insert(t1, "Account", {"Name": "new", "CustomerId": 91}) is None
        result = db.insert(t2, "Account", {"Name": "new", "CustomerId": 92})
        assert isinstance(result, WaitOn)
        db.commit(t1)
        with pytest.raises(SerializationFailure):
            db.insert(t2, "Account", {"Name": "new", "CustomerId": 92})

    def test_update_of_deleted_row_is_noop(self, db: Database):
        session = Session(db)
        session.begin()
        session.delete("Saving", 1)
        session.commit()
        updater = Session(db)
        updater.begin()
        assert updater.update("Saving", 1, {"Balance": 5.0}) is False

    def test_snapshot_still_sees_row_deleted_later(self, db: Database):
        reader = db.begin()
        deleter = db.begin()
        db.delete(deleter, "Saving", 1)
        db.commit(deleter)
        row = db.read(reader, "Saving", 1)
        assert row is not None and row["Balance"] == 100.0


class TestSfuCorners:
    def test_sfu_missing_row_returns_none(self, db: Database):
        t1 = db.begin()
        assert db.select_for_update(t1, "Saving", 999) is None
        # The lock was still taken (gap-style protection on the key).
        assert db.locks.holds(t1.txid, ("Saving", 999))

    def test_sfu_then_update_in_same_txn(self, db: Database):
        session = Session(db)
        session.begin()
        row = session.select_for_update("Saving", 1)
        session.update("Saving", 1, {"Balance": row["Balance"] + 1})
        session.commit()
        check = Session(db)
        check.begin()
        assert check.select("Saving", 1)["Balance"] == 101.0

    def test_sfu_reads_own_pending_write(self, db: Database):
        session = Session(db)
        session.begin()
        session.update("Saving", 1, {"Balance": 55.0})
        # FOR UPDATE after own write: engine returns the snapshot version
        # for visibility purposes only when no own write exists.
        row = db.read(session.transaction, "Saving", 1)
        assert row["Balance"] == 55.0

    def test_commercial_sfu_mark_expires_for_later_snapshots(
        self, commercial_db: Database
    ):
        db = commercial_db
        t1 = db.begin()
        db.select_for_update(t1, "Saving", 1)
        db.commit(t1)
        later = db.begin()  # snapshot after t1's commit
        assert db.write(
            later, "Saving", 1, {"CustomerId": 1, "Balance": 0.0}
        ) is None
        db.commit(later)
        assert later.status is TxnStatus.COMMITTED


class TestMixedWorkloads:
    def test_many_sequential_mixed_ops_keep_engine_consistent(self, db):
        session = Session(db)
        for round_number in range(20):
            session.begin(f"round-{round_number}")
            session.update(
                "Checking", 1 + round_number % 3,
                lambda row: {"Balance": row["Balance"] + 1},
            )
            if round_number % 4 == 0:
                session.select("Saving", 1)
            session.commit()
        check = Session(db)
        check.begin()
        total = sum(
            check.select("Checking", cid)["Balance"] for cid in (1, 2, 3)
        )
        assert total == 3 * 50.0 + 20

    def test_version_chains_grow_monotonically(self, db: Database):
        for _ in range(5):
            session = Session(db)
            session.begin()
            session.update("Saving", 1, lambda row: {"Balance": row["Balance"]})
            session.commit()
        chain = db.catalog.table("Saving").chain(1)
        timestamps = [version.commit_ts for version in chain.committed]
        assert timestamps == sorted(timestamps)
        assert len(timestamps) == 6
