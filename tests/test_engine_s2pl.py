"""Strict two-phase locking mode (the conventional serializable baseline)."""

from __future__ import annotations

import pytest

from repro.engine import Database, WaitOn
from repro.engine.session import NoWaitWaiter, Session, WouldBlock
from repro.errors import DeadlockError


def write_balance(db, txn, table, cid, value):
    return db.write(txn, table, cid, {"CustomerId": cid, "Balance": value})


class TestS2pl:
    def test_reads_take_shared_locks(self, s2pl_db: Database):
        db = s2pl_db
        t1 = db.begin()
        db.read(t1, "Saving", 1)
        assert db.locks.holds(t1.txid, ("Saving", 1))

    def test_reader_blocks_writer(self, s2pl_db: Database):
        db = s2pl_db
        t1 = db.begin("reader")
        t2 = db.begin("writer")
        db.read(t1, "Saving", 1)
        result = write_balance(db, t2, "Saving", 1, 0.0)
        assert isinstance(result, WaitOn)
        assert result.blocker_ids == {t1.txid}

    def test_writer_blocks_reader(self, s2pl_db: Database):
        db = s2pl_db
        t1 = db.begin("writer")
        t2 = db.begin("reader")
        write_balance(db, t1, "Saving", 1, 0.0)
        result = db.read(t2, "Saving", 1)
        assert isinstance(result, WaitOn)

    def test_reads_see_latest_committed_not_a_snapshot(self, s2pl_db):
        db = s2pl_db
        t1 = db.begin()
        db.read(t1, "Checking", 2)  # lock something unrelated
        t2 = db.begin()
        write_balance(db, t2, "Saving", 1, 777.0)
        db.commit(t2)
        # t1 started before t2 committed, but 2PL reads current state.
        assert db.read(t1, "Saving", 1)["Balance"] == 777.0

    def test_blocked_writer_succeeds_after_reader_commits(self, s2pl_db):
        """No first-updater-wins under 2PL: waiting is enough."""
        db = s2pl_db
        t1 = db.begin("reader")
        t2 = db.begin("writer")
        db.read(t1, "Saving", 1)
        assert isinstance(write_balance(db, t2, "Saving", 1, 5.0), WaitOn)
        db.commit(t1)
        assert write_balance(db, t2, "Saving", 1, 5.0) is None
        db.commit(t2)

    def test_write_skew_prevented_by_read_locks(self, s2pl_db: Database):
        """The SI write-skew scenario blocks (and would deadlock) under 2PL."""
        db = s2pl_db
        t1 = db.begin()
        t2 = db.begin()
        db.read(t1, "Saving", 1)
        db.read(t1, "Checking", 1)
        db.read(t2, "Saving", 1)
        db.read(t2, "Checking", 1)
        # Both try to upgrade different rows: each blocks on the other's
        # shared lock -> deadlock, detected when the second wait registers.
        blocked1 = write_balance(db, t1, "Checking", 1, 0.0)
        assert isinstance(blocked1, WaitOn)
        db.begin_wait(t1, blocked1)
        blocked2 = write_balance(db, t2, "Saving", 1, 0.0)
        assert isinstance(blocked2, WaitOn)
        with pytest.raises(DeadlockError):
            db.begin_wait(t2, blocked2)

    def test_session_nowait_surfaces_block(self, s2pl_db: Database):
        db = s2pl_db
        holder = Session(db)
        holder.begin("holder")
        holder.update("Saving", 1, {"Balance": 1.0})
        blocked = Session(db, waiter=NoWaitWaiter())
        blocked.begin("blocked")
        with pytest.raises(WouldBlock):
            blocked.select("Saving", 1)

    def test_scan_locks_matched_rows(self, s2pl_db: Database):
        db = s2pl_db
        t1 = db.begin()
        rows = db.scan(t1, "Saving", lambda r: r["Balance"] >= 100.0)
        assert len(rows) == 3
        for cid in (1, 2, 3):
            assert db.locks.holds(t1.txid, ("Saving", cid))
