"""SELECT FOR UPDATE semantics — the PostgreSQL/commercial split.

Section II-C of the paper: on the commercial platform SFU "is treated for
concurrency control like an Update", whereas in PostgreSQL the interleaving
``begin(T) begin(U) read-sfu(T,x) commit(T) write(U,x) commit(U)`` is
allowed even though it leaves a vulnerable rw edge from T to U.
"""

from __future__ import annotations

import pytest

from repro.engine import Database, WaitOn
from repro.engine.transaction import TxnStatus
from repro.errors import SerializationFailure


def write_balance(db, txn, table, cid, value):
    return db.write(txn, table, cid, {"CustomerId": cid, "Balance": value})


class TestPostgresSfu:
    def test_sfu_reads_the_snapshot_value(self, db: Database):
        t1 = db.begin()
        row = db.select_for_update(t1, "Saving", 1)
        assert row["Balance"] == 100.0
        assert ("Saving", 1) in t1.sfu_rows
        assert not t1.cc_writes  # lock-only: no CC write registered

    def test_sfu_blocks_concurrent_writer_while_active(self, db: Database):
        t1 = db.begin("sfu")
        t2 = db.begin("writer")
        db.select_for_update(t1, "Saving", 1)
        result = write_balance(db, t2, "Saving", 1, 0.0)
        assert isinstance(result, WaitOn)
        assert result.blocker_ids == {t1.txid}

    def test_paper_interleaving_allowed_on_postgres(self, db: Database):
        """read-sfu(T,x) commit(T) write(U,x) commit(U) succeeds on PG."""
        t = db.begin("T")
        u = db.begin("U")
        db.select_for_update(t, "Saving", 1)
        db.commit(t)
        assert write_balance(db, u, "Saving", 1, 0.0) is None
        db.commit(u)
        assert u.status is TxnStatus.COMMITTED

    def test_sfu_fails_on_stale_snapshot(self, db: Database):
        """PG's FOR UPDATE follows the same FUW rule as UPDATE."""
        t1 = db.begin()
        t2 = db.begin()
        write_balance(db, t2, "Saving", 1, 0.0)
        db.commit(t2)
        with pytest.raises(SerializationFailure):
            db.select_for_update(t1, "Saving", 1)

    def test_sfu_commit_is_not_a_wal_write(self, db: Database):
        t1 = db.begin()
        db.select_for_update(t1, "Saving", 1)
        assert not t1.needs_wal_flush
        db.commit(t1)
        assert len(db.wal) == 0


class TestCommercialSfu:
    def test_sfu_registers_cc_write(self, commercial_db: Database):
        t1 = commercial_db.begin()
        commercial_db.select_for_update(t1, "Saving", 1)
        assert ("Saving", 1) in t1.cc_writes
        # SFU still needs no WAL flush: it writes no data.
        assert not t1.needs_wal_flush

    def test_paper_interleaving_rejected_on_commercial(
        self, commercial_db: Database
    ):
        """The same interleaving fails: SFU acts like an update."""
        db = commercial_db
        t = db.begin("T")
        u = db.begin("U")
        db.select_for_update(t, "Saving", 1)
        db.commit(t)
        with pytest.raises(SerializationFailure):
            write_balance(db, u, "Saving", 1, 0.0)
        assert u.status is TxnStatus.ABORTED

    def test_sfu_vs_sfu_conflict(self, commercial_db: Database):
        db = commercial_db
        t = db.begin("T")
        u = db.begin("U")
        db.select_for_update(t, "Saving", 1)
        db.commit(t)
        with pytest.raises(SerializationFailure):
            db.select_for_update(u, "Saving", 1)

    def test_non_concurrent_writer_unaffected(self, commercial_db: Database):
        db = commercial_db
        t = db.begin("T")
        db.select_for_update(t, "Saving", 1)
        db.commit(t)
        u = db.begin("U")  # starts after T committed
        assert write_balance(db, u, "Saving", 1, 0.0) is None
        db.commit(u)

    def test_sfu_on_different_rows_do_not_conflict(self, commercial_db):
        db = commercial_db
        t = db.begin()
        u = db.begin()
        db.select_for_update(t, "Saving", 1)
        db.select_for_update(u, "Saving", 2)
        db.commit(t)
        db.commit(u)
        assert t.status is TxnStatus.COMMITTED
        assert u.status is TxnStatus.COMMITTED
