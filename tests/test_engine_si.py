"""Snapshot Isolation semantics, stepped manually through the engine API.

These tests pin down the exact behaviours the paper's analysis relies on:
snapshot reads, readers-never-block, first-updater-wins (both the immediate
and the blocked-then-abort path), and write-skew being *allowed*.
"""

from __future__ import annotations

import pytest

from repro.engine import Database, EngineConfig, WaitOn
from repro.engine.transaction import OWN_WRITE, TxnStatus
from repro.errors import (
    IntegrityError,
    SerializationFailure,
    TransactionStateError,
)

from tests.conftest import make_bank_db


def balance(db: Database, table: str, cid: int) -> float:
    txn = db.begin()
    row = db.read(txn, table, cid)
    db.commit(txn)
    return row["Balance"]


def write_balance(db, txn, table, cid, value):
    result = db.write(txn, table, cid, {"CustomerId": cid, "Balance": value})
    assert result is None
    return result


class TestSnapshotReads:
    def test_reader_sees_data_as_of_its_snapshot(self, db: Database):
        t1 = db.begin("reader")
        t2 = db.begin("writer")
        write_balance(db, t2, "Saving", 1, 999.0)
        db.commit(t2)
        # t1's snapshot predates t2's commit.
        assert db.read(t1, "Saving", 1)["Balance"] == 100.0
        db.commit(t1)
        assert balance(db, "Saving", 1) == 999.0

    def test_reads_are_repeatable_within_a_transaction(self, db: Database):
        t1 = db.begin()
        first = db.read(t1, "Saving", 1)["Balance"]
        t2 = db.begin()
        write_balance(db, t2, "Saving", 1, 0.0)
        db.commit(t2)
        assert db.read(t1, "Saving", 1)["Balance"] == first

    def test_no_inconsistent_read_across_items(self, db: Database):
        """A reader can never see part but not all of another transaction."""
        t2 = db.begin("transfer")
        write_balance(db, t2, "Saving", 1, 0.0)
        write_balance(db, t2, "Checking", 1, 150.0)
        t1 = db.begin("reader")  # snapshot before t2 commits
        db.commit(t2)
        saving = db.read(t1, "Saving", 1)["Balance"]
        checking = db.read(t1, "Checking", 1)["Balance"]
        assert (saving, checking) == (100.0, 50.0)  # entirely before t2

    def test_reader_sees_own_writes(self, db: Database):
        t1 = db.begin()
        write_balance(db, t1, "Saving", 1, 42.0)
        assert db.read(t1, "Saving", 1)["Balance"] == 42.0
        assert t1.reads[("Saving", 1)] == OWN_WRITE

    def test_readers_never_block_on_writers(self, db: Database):
        t2 = db.begin("writer")
        write_balance(db, t2, "Saving", 1, 7.0)
        t1 = db.begin("reader")
        result = db.read(t1, "Saving", 1)
        assert not isinstance(result, WaitOn)
        assert result["Balance"] == 100.0

    def test_read_of_missing_row_returns_none_and_records_read(self, db):
        t1 = db.begin()
        assert db.read(t1, "Saving", 999) is None
        assert t1.reads[("Saving", 999)] == 0


class TestFirstUpdaterWins:
    def test_immediate_abort_when_snapshot_is_stale(self, db: Database):
        t1 = db.begin("loser")
        t2 = db.begin("winner")
        write_balance(db, t2, "Saving", 1, 1.0)
        db.commit(t2)
        with pytest.raises(SerializationFailure):
            write_balance(db, t1, "Saving", 1, 2.0)
        assert t1.status is TxnStatus.ABORTED

    def test_writer_blocks_behind_uncommitted_writer(self, db: Database):
        t1 = db.begin("holder")
        t2 = db.begin("waiter")
        write_balance(db, t1, "Saving", 1, 1.0)
        result = db.write(t2, "Saving", 1, {"CustomerId": 1, "Balance": 2.0})
        assert isinstance(result, WaitOn)
        assert result.blocker_ids == {t1.txid}

    def test_blocked_writer_aborts_after_holder_commits(self, db: Database):
        t1 = db.begin("holder")
        t2 = db.begin("waiter")
        write_balance(db, t1, "Saving", 1, 1.0)
        assert isinstance(
            db.write(t2, "Saving", 1, {"CustomerId": 1, "Balance": 2.0}), WaitOn
        )
        db.commit(t1)
        with pytest.raises(SerializationFailure):
            db.write(t2, "Saving", 1, {"CustomerId": 1, "Balance": 2.0})

    def test_blocked_writer_proceeds_after_holder_aborts(self, db: Database):
        t1 = db.begin("holder")
        t2 = db.begin("waiter")
        write_balance(db, t1, "Saving", 1, 1.0)
        assert isinstance(
            db.write(t2, "Saving", 1, {"CustomerId": 1, "Balance": 2.0}), WaitOn
        )
        db.abort(t1)
        write_balance(db, t2, "Saving", 1, 2.0)
        db.commit(t2)
        assert balance(db, "Saving", 1) == 2.0

    def test_non_overlapping_writers_both_commit(self, db: Database):
        t1 = db.begin()
        write_balance(db, t1, "Saving", 1, 1.0)
        db.commit(t1)
        t2 = db.begin()  # starts after t1 committed: not concurrent
        write_balance(db, t2, "Saving", 1, 2.0)
        db.commit(t2)
        assert balance(db, "Saving", 1) == 2.0

    def test_lost_update_prevented(self, db: Database):
        """Two concurrent increments: SI must not lose one."""
        t1 = db.begin()
        t2 = db.begin()
        v1 = db.read(t1, "Saving", 1)["Balance"]
        v2 = db.read(t2, "Saving", 1)["Balance"]
        write_balance(db, t1, "Saving", 1, v1 + 10)
        db.commit(t1)
        with pytest.raises(SerializationFailure):
            write_balance(db, t2, "Saving", 1, v2 + 10)
        assert balance(db, "Saving", 1) == 110.0

    def test_write_skew_is_allowed_by_si(self, db: Database):
        """The anomaly SI does NOT prevent — the reason this paper exists.

        Two transactions read both accounts of customer 1 and each updates
        a *different* one; SI commits both even though no serial order
        explains the result.
        """
        t1 = db.begin("WriteCheck-like")
        t2 = db.begin("TransactSaving-like")
        total1 = (
            db.read(t1, "Saving", 1)["Balance"]
            + db.read(t1, "Checking", 1)["Balance"]
        )
        total2 = (
            db.read(t2, "Saving", 1)["Balance"]
            + db.read(t2, "Checking", 1)["Balance"]
        )
        assert total1 == total2 == 150.0
        write_balance(db, t1, "Checking", 1, 50.0 - 140.0)  # withdraw 140
        write_balance(db, t2, "Saving", 1, 100.0 - 140.0)  # withdraw 140
        db.commit(t1)
        db.commit(t2)  # SI happily commits: disjoint write sets
        assert balance(db, "Checking", 1) + balance(db, "Saving", 1) < 0


class TestInsertDelete:
    def test_insert_and_read_back(self, db: Database):
        t1 = db.begin()
        db.insert(
            t1, "Account", {"Name": "zoe", "CustomerId": 99}
        )
        assert db.read(t1, "Account", "zoe")["CustomerId"] == 99
        db.commit(t1)
        t2 = db.begin()
        assert db.read(t2, "Account", "zoe")["CustomerId"] == 99

    def test_duplicate_insert_rejected(self, db: Database):
        t1 = db.begin()
        with pytest.raises(IntegrityError):
            db.insert(t1, "Account", {"Name": "cust1", "CustomerId": 77})

    def test_unique_constraint_enforced_at_commit(self, db: Database):
        t1 = db.begin()
        db.insert(t1, "Account", {"Name": "dup", "CustomerId": 1})
        with pytest.raises(IntegrityError):
            db.commit(t1)

    def test_delete_hides_row_from_later_snapshots(self, db: Database):
        t1 = db.begin()
        db.delete(t1, "Account", "cust1")
        db.commit(t1)
        t2 = db.begin()
        assert db.read(t2, "Account", "cust1") is None

    def test_lookup_unique_finds_by_customer_id(self, db: Database):
        t1 = db.begin()
        found = db.lookup_unique(t1, "Account", "CustomerId", 2)
        assert found is not None
        key, row = found
        assert key == "cust2" and row["Name"] == "cust2"
        # The predicate read was recorded for phantom analysis.
        assert t1.predicate_reads[0].matched_keys == ("cust2",)

    def test_scan_with_predicate(self, db: Database):
        t1 = db.begin()
        rows = db.scan(
            t1, "Saving", lambda r: r["Balance"] >= 100.0, "Balance >= 100"
        )
        assert len(rows) == 3

    def test_write_key_mismatch_rejected(self, db: Database):
        t1 = db.begin()
        with pytest.raises(IntegrityError):
            db.write(t1, "Saving", 1, {"CustomerId": 2, "Balance": 0.0})


class TestLifecycle:
    def test_operations_on_finished_txn_rejected(self, db: Database):
        t1 = db.begin()
        db.commit(t1)
        with pytest.raises(TransactionStateError):
            db.read(t1, "Saving", 1)
        with pytest.raises(TransactionStateError):
            db.commit(t1)

    def test_abort_is_idempotent(self, db: Database):
        t1 = db.begin()
        db.abort(t1)
        db.abort(t1)
        assert t1.status is TxnStatus.ABORTED

    def test_abort_discards_writes_and_releases_locks(self, db: Database):
        t1 = db.begin()
        write_balance(db, t1, "Saving", 1, 0.0)
        db.abort(t1)
        assert balance(db, "Saving", 1) == 100.0
        t2 = db.begin()
        write_balance(db, t2, "Saving", 1, 5.0)
        db.commit(t2)
        assert balance(db, "Saving", 1) == 5.0

    def test_observers_fire_on_commit_and_abort(self):
        seen = []
        db = make_bank_db()
        db.add_observer(lambda txn: seen.append((txn.txid, txn.status)))
        t1 = db.begin()
        db.commit(t1)
        t2 = db.begin()
        db.abort(t2)
        assert seen == [
            (t1.txid, TxnStatus.COMMITTED),
            (t2.txid, TxnStatus.ABORTED),
        ]

    def test_read_only_commit_writes_no_wal_record(self, db: Database):
        t1 = db.begin("Balance")
        db.read(t1, "Saving", 1)
        db.commit(t1)
        assert len(db.wal) == 0
        t2 = db.begin("Deposit")
        write_balance(db, t2, "Saving", 1, 1.0)
        db.commit(t2)
        assert len(db.wal) == 1
        assert db.wal.records[0].rows == (("Saving", 1),)

    def test_concurrency_predicate(self, db: Database):
        t1 = db.begin()
        t2 = db.begin()
        assert t1.concurrent_with(t2)
        db.commit(t1)
        t3 = db.begin()
        assert not t1.concurrent_with(t3)
        assert t2.concurrent_with(t3)


class TestFirstCommitterWins:
    def test_conflict_detected_at_commit_time(self):
        db = make_bank_db(EngineConfig.first_committer_wins())
        t1 = db.begin()
        t2 = db.begin()
        # Writes do not clash at write time (t1 writes, commits, THEN t2
        # writes the same row — the lock is free by then).
        write_balance(db, t1, "Saving", 1, 1.0)
        db.commit(t1)
        write_balance(db, t2, "Saving", 1, 2.0)
        with pytest.raises(SerializationFailure):
            db.commit(t2)
        assert balance(db, "Saving", 1) == 1.0

    def test_non_conflicting_commit_passes_validation(self):
        db = make_bank_db(EngineConfig.first_committer_wins())
        t1 = db.begin()
        t2 = db.begin()
        write_balance(db, t1, "Saving", 1, 1.0)
        write_balance(db, t2, "Saving", 2, 2.0)
        db.commit(t1)
        db.commit(t2)
        assert balance(db, "Saving", 2) == 2.0
