"""SSI certifier mode (extension: runtime dangerous-structure detection)."""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.engine.transaction import TxnStatus
from repro.errors import SsiAbort


def write_balance(db, txn, table, cid, value):
    return db.write(txn, table, cid, {"CustomerId": cid, "Balance": value})


class TestSsiCertifier:
    def test_write_skew_aborted(self, ssi_db: Database):
        """The classic write skew: one of the two pivots must die."""
        db = ssi_db
        t1 = db.begin("wc")
        t2 = db.begin("ts")
        db.read(t1, "Saving", 1)
        db.read(t1, "Checking", 1)
        db.read(t2, "Saving", 1)
        db.read(t2, "Checking", 1)
        outcomes = []
        for txn, table in ((t1, "Checking"), (t2, "Saving")):
            try:
                write_balance(db, txn, table, 1, 0.0)
                db.commit(txn)
                outcomes.append("committed")
            except SsiAbort:
                outcomes.append("aborted")
        assert "aborted" in outcomes

    def test_read_only_transactions_unaffected_when_alone(self, ssi_db):
        db = ssi_db
        t1 = db.begin()
        db.read(t1, "Saving", 1)
        db.read(t1, "Checking", 1)
        db.commit(t1)
        assert t1.status is TxnStatus.COMMITTED

    def test_plain_update_conflict_still_fuw(self, ssi_db: Database):
        """SSI layers on top of SI; FUW still applies to ww conflicts."""
        from repro.errors import SerializationFailure

        db = ssi_db
        t1 = db.begin()
        t2 = db.begin()
        write_balance(db, t2, "Saving", 1, 1.0)
        db.commit(t2)
        with pytest.raises(SerializationFailure):
            write_balance(db, t1, "Saving", 1, 2.0)

    def test_non_conflicting_transactions_commit(self, ssi_db: Database):
        db = ssi_db
        t1 = db.begin()
        t2 = db.begin()
        db.read(t1, "Saving", 1)
        write_balance(db, t1, "Saving", 1, 1.0)
        db.read(t2, "Saving", 2)
        write_balance(db, t2, "Saving", 2, 2.0)
        db.commit(t1)
        db.commit(t2)
        assert t1.status is TxnStatus.COMMITTED
        assert t2.status is TxnStatus.COMMITTED

    def test_sequential_transactions_never_aborted(self, ssi_db: Database):
        db = ssi_db
        for _ in range(5):
            t = db.begin()
            current = db.read(t, "Saving", 1)["Balance"]
            write_balance(db, t, "Saving", 1, current + 1)
            db.commit(t)
            assert t.status is TxnStatus.COMMITTED
        final = db.begin()
        assert db.read(final, "Saving", 1)["Balance"] == 105.0

    def test_doomed_transaction_aborts_at_next_operation(self, ssi_db):
        """A pivot learns of its doom at its next engine call."""
        db = ssi_db
        pivot = db.begin("pivot")
        db.read(pivot, "Saving", 1)  # will become out-conflict
        # Reader that will later be overwritten by the pivot.
        reader = db.begin("reader")
        db.read(reader, "Checking", 1)
        # Pivot writes what the reader read -> in-edge into pivot... and a
        # concurrent writer overwrites what the pivot read -> out-edge.
        write_balance(db, pivot, "Checking", 1, 0.0)
        writer = db.begin("writer")
        write_balance(db, writer, "Saving", 1, 0.0)
        db.commit(writer)
        with pytest.raises(SsiAbort):
            db.commit(pivot)
        assert pivot.status is TxnStatus.ABORTED
        # The other two are free to commit.
        db.commit(reader)
        assert reader.status is TxnStatus.COMMITTED
