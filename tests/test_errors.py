"""Error-hierarchy contracts the retry logic and statistics rely on."""

from __future__ import annotations

import pytest

from repro.errors import (
    ApplicationRollback,
    DatabaseCrashed,
    DeadlockError,
    EngineError,
    FaultInjected,
    LockTimeout,
    RecoveryError,
    ReproError,
    SerializationFailure,
    SsiAbort,
    TransactionAborted,
)


class TestHierarchy:
    def test_concurrency_aborts_share_a_base(self):
        """The workload driver catches TransactionAborted for retries."""
        for error_type in (
            SerializationFailure,
            DeadlockError,
            SsiAbort,
            LockTimeout,
            FaultInjected,
        ):
            assert issubclass(error_type, TransactionAborted)
            assert issubclass(error_type, EngineError)
            assert issubclass(error_type, ReproError)

    def test_ssi_abort_is_a_serialization_failure(self):
        """Code retrying on SerializationFailure handles SSI aborts too."""
        assert issubclass(SsiAbort, SerializationFailure)

    def test_application_rollback_is_not_a_concurrency_abort(self):
        """Business-rule rollbacks must not be counted as aborts."""
        assert not issubclass(ApplicationRollback, TransactionAborted)
        assert issubclass(ApplicationRollback, ReproError)

    def test_abort_reasons_are_distinct(self):
        """Figure 6 statistics key on the reason tags."""
        reasons = {
            SerializationFailure.reason,
            DeadlockError.reason,
            SsiAbort.reason,
        }
        assert reasons == {"serialization", "deadlock", "ssi"}

    def test_robustness_abort_reasons_are_distinct(self):
        """The abort-breakdown statistics key on the full reason set."""
        reasons = {
            SerializationFailure.reason,
            DeadlockError.reason,
            SsiAbort.reason,
            LockTimeout.reason,
            FaultInjected.reason,
        }
        assert reasons == {
            "serialization",
            "deadlock",
            "ssi",
            "lock-timeout",
            "fault",
        }

    def test_lock_timeout_counts_as_concurrency_abort(self):
        from repro.workload.stats import CONCURRENCY_ABORT_REASONS

        assert LockTimeout.reason in CONCURRENCY_ABORT_REASONS
        assert FaultInjected.reason not in CONCURRENCY_ABORT_REASONS

    def test_crash_and_recovery_errors_are_not_aborts(self):
        """A crashed database is not a retryable transaction outcome:
        the request layer must not blindly begin a new transaction."""
        for error_type in (DatabaseCrashed, RecoveryError):
            assert issubclass(error_type, EngineError)
            assert not issubclass(error_type, TransactionAborted)

    def test_application_rollback_default_message(self):
        assert "rollback" in str(ApplicationRollback())
        assert str(ApplicationRollback("custom")) == "custom"


class TestStatsFallback:
    def test_t_critical_without_scipy(self, monkeypatch):
        import repro.workload.stats as stats_module

        monkeypatch.setattr(stats_module, "_scipy_stats", None)
        # Table value for 4 degrees of freedom (5 repetitions).
        assert stats_module.t_critical(4) == pytest.approx(2.776)
        # Large dof falls back to the normal approximation.
        assert stats_module.t_critical(100) == pytest.approx(1.96)
        assert stats_module.t_critical(0) == float("inf")

    def test_t_critical_with_scipy_matches_table(self):
        from repro.workload.stats import t_critical

        assert t_critical(4) == pytest.approx(2.776, abs=0.01)
