"""Exhaustive interleaving exploration of the SmallBank anomaly scenario.

These tests model-check *every* statement-level schedule of condensed
Balance / WriteCheck / TransactSaving bodies (no Account lookups, so the
schedule space stays exhaustive-friendly) and establish:

* plain SI admits non-serializable schedules, all classified as the
  read-only-transaction anomaly / dangerous structure;
* each fixing strategy admits none;
* the SSI engine mode admits none either.
"""

from __future__ import annotations

from repro.analysis import InterleavingExplorer, ScriptedProgram
from repro.engine import Database, EngineConfig, Session
from repro.smallbank import CHECKING, SAVING, PopulationConfig, build_database

CID = 1


def make_db_factory(config: EngineConfig):
    population = PopulationConfig(
        customers=1,
        min_saving=0.0,
        max_saving=0.0,
        min_checking=0.0,
        max_checking=0.0,
    )

    def factory() -> Database:
        return build_database(config, population)

    return factory


# ----------------------------------------------------------------------
# Condensed program bodies (direct session calls; one gate per statement)
# ----------------------------------------------------------------------


def balance_body(session: Session) -> None:
    session.select(SAVING, CID)
    session.select(CHECKING, CID)


def balance_promoted_body(session: Session) -> None:
    session.identity_update(CHECKING, CID, "Balance")
    session.select(SAVING, CID)
    session.select(CHECKING, CID)


def transact_saving_body(session: Session) -> None:
    session.update(SAVING, CID, lambda row: {"Balance": row["Balance"] + 20.0})


def write_check_body(session: Session) -> None:
    saving = session.select(SAVING, CID)["Balance"]
    checking = session.select(CHECKING, CID)["Balance"]
    debit = 11.0 if saving + checking < 10.0 else 10.0
    session.update(
        CHECKING, CID, lambda row: {"Balance": row["Balance"] - debit}
    )


def write_check_promoted_body(session: Session) -> None:
    session.identity_update(SAVING, CID, "Balance")
    write_check_body(session)


def write_check_sfu_body(session: Session) -> None:
    saving = session.select_for_update(SAVING, CID)["Balance"]
    checking = session.select(CHECKING, CID)["Balance"]
    debit = 11.0 if saving + checking < 10.0 else 10.0
    session.update(
        CHECKING, CID, lambda row: {"Balance": row["Balance"] - debit}
    )


def conflict_touch(session: Session) -> None:
    session.update(
        "Conflict", CID, lambda row: {"Value": row["Value"] + 1},
        kind="materialize-update",
    )


def materialized(body):
    def wrapped(session: Session) -> None:
        conflict_touch(session)
        body(session)

    return wrapped


BAL = ScriptedProgram("Balance", balance_body)
TS = ScriptedProgram("TransactSaving", transact_saving_body)
WC = ScriptedProgram("WriteCheck", write_check_body)


def explore(config: EngineConfig, programs, max_schedules=20_000):
    return InterleavingExplorer(
        make_db_factory(config), programs, max_schedules=max_schedules
    ).explore()


class TestExplorerMechanics:
    def test_single_program_has_one_schedule(self):
        summary = explore(EngineConfig.postgres(), [BAL])
        assert summary.schedules == 1
        assert summary.all_serializable

    def test_two_readers_schedule_count(self):
        """Reads are not scheduling points under SI (sound reduction), so
        two read-only programs have one gate each (begin): 2 schedules."""
        summary = explore(EngineConfig.postgres(), [BAL, BAL])
        assert summary.schedules == 2
        assert summary.all_serializable

    def test_read_gates_can_be_enabled(self):
        """With reads gated, two 3-gate programs give C(6,3) = 20."""
        from repro.analysis.explorer import DEFAULT_GATE_KINDS

        summary = InterleavingExplorer(
            make_db_factory(EngineConfig.postgres()),
            [BAL, BAL],
            gate_kinds=DEFAULT_GATE_KINDS | {"select"},
        ).explore()
        assert summary.schedules == 20
        assert summary.all_serializable

    def test_truncation_flag(self):
        summary = explore(
            EngineConfig.postgres(), [BAL, WC], max_schedules=3
        )
        assert summary.truncated
        assert summary.schedules == 3

    def test_deterministic_replay(self):
        explorer = InterleavingExplorer(
            make_db_factory(EngineConfig.postgres()), [BAL, WC]
        )
        first = explorer.run_schedule((1, 0, 1))
        second = explorer.run_schedule((1, 0, 1))
        assert first.choices == second.choices
        assert first.report.serializable == second.report.serializable


class TestPlainSiAdmitsTheAnomaly:
    def test_exhaustive_three_transaction_scenario(self):
        """7 steps over 3 programs: 7!/(1!3!3!) = 140 schedules, all run."""
        summary = explore(EngineConfig.postgres(), [BAL, WC, TS])
        assert not summary.truncated
        assert summary.schedules == 140
        assert not summary.all_serializable
        # Every bad schedule is the read-only anomaly / dangerous structure.
        assert set(summary.anomaly_counts) <= {
            "read-only-transaction-anomaly",
            "dangerous-structure",
            "write-skew",
        }
        assert summary.anomaly_counts.get("dangerous-structure", 0) > 0

    def test_wc_ts_pair_alone_is_always_serializable(self):
        """Without the read-only Balance there is no cycle (Section III-C:
        the dangerous structure needs Bal as the vulnerable in-edge)."""
        summary = explore(EngineConfig.postgres(), [WC, TS])
        assert not summary.truncated
        assert summary.all_serializable


class TestStrategiesCloseEverySchedule:
    def test_promote_wt_upd(self):
        wc = ScriptedProgram("WriteCheck", write_check_promoted_body)
        summary = explore(EngineConfig.postgres(), [BAL, wc, TS])
        assert not summary.truncated
        assert summary.all_serializable

    def test_materialize_wt(self):
        wc = ScriptedProgram("WriteCheck", materialized(write_check_body))
        ts = ScriptedProgram(
            "TransactSaving", materialized(transact_saving_body)
        )
        summary = explore(EngineConfig.postgres(), [BAL, wc, ts])
        assert not summary.truncated
        assert summary.all_serializable

    def test_promote_bw_upd(self):
        bal = ScriptedProgram("Balance", balance_promoted_body)
        summary = explore(EngineConfig.postgres(), [bal, WC, TS])
        assert not summary.truncated
        assert summary.all_serializable

    def test_materialize_bw(self):
        bal = ScriptedProgram("Balance", materialized(balance_body))
        wc = ScriptedProgram("WriteCheck", materialized(write_check_body))
        summary = explore(EngineConfig.postgres(), [bal, wc, TS])
        assert not summary.truncated
        assert summary.all_serializable

    def test_promote_wt_sfu(self):
        """SFU promotion closes every schedule of THIS scenario on both
        engines.  (On PostgreSQL the *static* guarantee is still absent —
        the vulnerable interleaving ``read-sfu commit write commit``
        remains possible, see test_anomalies — but in the SmallBank
        dangerous structure that interleaving forces WriteCheck to commit
        before TransactSaving, which breaks the cycle: Balance can no
        longer see TS without also seeing WC.)"""
        wc = ScriptedProgram("WriteCheck", write_check_sfu_body)
        commercial = explore(EngineConfig.commercial(), [BAL, wc, TS])
        assert not commercial.truncated
        assert commercial.all_serializable
        postgres = explore(EngineConfig.postgres(), [BAL, wc, TS])
        assert not postgres.truncated
        assert postgres.all_serializable

    def test_ssi_engine_closes_every_schedule(self):
        summary = explore(EngineConfig.ssi(), [BAL, WC, TS])
        assert not summary.truncated
        assert summary.all_serializable

    def test_s2pl_engine_closes_every_schedule(self):
        summary = explore(EngineConfig.s2pl(), [BAL, WC, TS])
        assert not summary.truncated
        assert summary.all_serializable


class TestRealSmallBankPrograms:
    """The same exhaustive exploration over the actual mini-SQL programs
    (Account lookups, SELECT INTO chains, strategy-injected statements) —
    not the condensed bodies above.  Reads are not scheduling points, so
    the schedule space is identical and stays exhaustive."""

    def scenario(self, strategy_key: str):
        from repro.smallbank import customer_name, get_strategy

        txns = get_strategy(strategy_key).transactions()
        name = customer_name(CID)
        return [
            ScriptedProgram(
                "Balance", lambda s: txns.balance(s, {"N": name})
            ),
            ScriptedProgram(
                "WriteCheck",
                lambda s: txns.write_check(s, {"N": name, "V": 10.0}),
            ),
            ScriptedProgram(
                "TransactSaving",
                lambda s: txns.transact_saving(s, {"N": name, "V": 20.0}),
            ),
        ]

    def test_base_si_admits_exactly_the_read_only_anomaly(self):
        summary = explore(EngineConfig.postgres(), self.scenario("base-si"))
        assert not summary.truncated
        assert not summary.all_serializable
        assert set(summary.anomaly_counts) == {
            "read-only-transaction-anomaly",
            "dangerous-structure",
        }

    def test_promote_wt_upd_closes_every_schedule(self):
        summary = explore(
            EngineConfig.postgres(), self.scenario("promote-wt-upd")
        )
        assert not summary.truncated
        assert summary.all_serializable

    def test_materialize_bw_closes_every_schedule(self):
        summary = explore(
            EngineConfig.postgres(), self.scenario("materialize-bw")
        )
        assert not summary.truncated
        assert summary.all_serializable

    def test_promote_wt_sfu_closes_every_schedule_on_commercial(self):
        summary = explore(
            EngineConfig.commercial(), self.scenario("promote-wt-sfu")
        )
        assert not summary.truncated
        assert summary.all_serializable
