"""Extraction tests: executable programs match their hand-written specs.

The decisive consistency check of the reproduction: the specs that Table I
and the Figures 1-3 SDGs are derived from describe exactly what the
mini-SQL programs touch — for the base mix and for every strategy.
"""

from __future__ import annotations

import pytest

from repro.analysis.extract import (
    extract_smallbank_specs,
    extracted_smallbank_program_set,
    footprint_signature,
    merge_specs,
)
from repro.core import build_sdg
from repro.errors import AnalysisError
from repro.smallbank import smallbank_specs
from repro.smallbank.strategies import get_strategy

SPEC_VALIDATED_STRATEGIES = (
    "base-si",
    "materialize-wt",
    "promote-wt-upd",
    "promote-wt-sfu",
    "materialize-bw",
    "promote-bw-upd",
    "promote-bw-sfu",
    "materialize-all",
    "promote-all",
)


class TestBaseExtraction:
    def test_extracted_footprints_match_declared_specs(self):
        declared = smallbank_specs()
        extracted = extract_smallbank_specs("base-si")
        for name, spec in extracted.items():
            assert footprint_signature(spec) == footprint_signature(
                declared[name]
            ), name

    def test_extracted_sdg_reproduces_figure_1(self):
        sdg = build_sdg(extracted_smallbank_program_set("base-si"))
        assert [str(s) for s in sdg.dangerous_structures()] == [
            "Balance -(v)-> WriteCheck -(v)-> TransactSaving"
        ]
        assert sdg.vulnerable_edges() == build_sdg(
            smallbank_specs()
        ).vulnerable_edges()

    def test_balance_extracts_as_read_only(self):
        extracted = extract_smallbank_specs("base-si")
        assert extracted["Balance"].is_read_only

    def test_amalgamate_extracts_two_parameters(self):
        extracted = extract_smallbank_specs("base-si")
        amalgamate = extracted["Amalgamate"]
        keys = {a.key_param for a in amalgamate.accesses}
        assert keys == {"x1", "x2"}


class TestStrategyExtraction:
    @pytest.mark.parametrize("key", SPEC_VALIDATED_STRATEGIES)
    def test_every_strategy_variant_matches_its_spec(self, key):
        """The executable rewrite and the spec rewrite agree exactly."""
        declared, _mods = get_strategy(key).apply()
        extracted = extract_smallbank_specs(key)
        for name, spec in extracted.items():
            assert footprint_signature(spec) == footprint_signature(
                declared[name]
            ), (key, name)

    @pytest.mark.parametrize(
        "key",
        [k for k in SPEC_VALIDATED_STRATEGIES if k != "base-si"],
    )
    def test_extracted_variants_certify_on_their_platform(self, key):
        strategy = get_strategy(key)
        sfu_is_write = True  # commercial semantics; sfu fixes need it
        sdg = build_sdg(
            extracted_smallbank_program_set(key), sfu_is_write=sfu_is_write
        )
        assert sdg.is_si_serializable(), key


class TestExtractionMechanics:
    def test_unattributed_row_raises(self):
        from repro.analysis.extract import extract_spec
        from repro.smallbank.schema import PopulationConfig, build_database

        db = build_database(population=PopulationConfig(customers=2))

        def body(session):
            session.select("Saving", 2)  # not in the mapping below

        with pytest.raises(AnalysisError):
            extract_spec(db, "P", body, {("Saving", 1): "x"}, ("x",))

    def test_merge_requires_same_program(self):
        extracted = extract_smallbank_specs("base-si")
        with pytest.raises(AnalysisError):
            merge_specs(extracted["Balance"], extracted["WriteCheck"])

    def test_extraction_leaves_database_untouched(self):
        """Footprints are collected from a rolled-back transaction."""
        from repro.analysis.extract import extract_spec
        from repro.smallbank.schema import PopulationConfig, build_database

        db = build_database(population=PopulationConfig(customers=1))
        before = len(db.wal)

        def body(session):
            session.update("Saving", 1, {"Balance": 0.0})

        spec = extract_spec(db, "P", body, {("Saving", 1): "x"}, ("x",))
        assert len(db.wal) == before
        assert spec.tables_written() == frozenset({"Saving"})
