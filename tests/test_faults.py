"""Fault injection: plan semantics and the engine/driver/simulator hooks."""

from __future__ import annotations

import pytest

from repro.engine import Database, EngineConfig, Session
from repro.errors import FaultInjected, LockTimeout
from repro.faults import INJECTION_POINTS, FaultPlan, FaultSpec
from repro.sim.core import Simulator
from repro.sim.resources import GroupCommitLog
from repro.smallbank.transactions import SmallBankTransactions
from repro.workload.driver import ThreadedDriver, ThreadedDriverConfig

from tests.conftest import make_bank_db


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan semantics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_rejects_unknown_point(self) -> None:
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultSpec("disk-on-fire")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"probability": 1.5},
            {"probability": -0.1},
            {"start_after": -1},
            {"max_fires": -2},
            {"magnitude": -0.5},
        ],
    )
    def test_spec_validates_parameters(self, kwargs) -> None:
        with pytest.raises(ValueError):
            FaultSpec("wal-stall", **kwargs)

    def test_plan_rejects_duplicate_points(self) -> None:
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan([FaultSpec("wal-stall"), FaultSpec("wal-stall")])

    def test_should_fire_rejects_unknown_point(self) -> None:
        with pytest.raises(ValueError):
            FaultPlan().should_fire("nope")

    def test_uncovered_point_never_fires_but_counts(self) -> None:
        plan = FaultPlan([FaultSpec("wal-stall")])
        assert not plan.covers("client-death")
        assert not plan.should_fire("client-death")
        assert plan.opportunities["client-death"] == 1
        assert plan.fired("client-death") == 0

    def test_start_after_and_max_fires(self) -> None:
        plan = FaultPlan([FaultSpec("wal-stall", start_after=2, max_fires=3)])
        fires = [plan.should_fire("wal-stall") for _ in range(8)]
        assert fires == [False, False, True, True, True, False, False, False]
        assert plan.opportunities["wal-stall"] == 8
        assert plan.fired("wal-stall") == 3

    def test_probability_is_seed_deterministic(self) -> None:
        def pattern(seed: int) -> list[bool]:
            plan = FaultPlan(
                [FaultSpec("abort-at-commit", probability=0.5)], seed=seed
            )
            return [plan.should_fire("abort-at-commit") for _ in range(64)]

        a, b = pattern(3), pattern(3)
        assert a == b
        assert any(a) and not all(a)  # genuinely probabilistic
        assert pattern(4) != a  # seed matters

    def test_extreme_probabilities_draw_nothing(self) -> None:
        """p=0 and p=1 must not consume RNG state (determinism guarantee)."""
        plan = FaultPlan(
            [
                FaultSpec("wal-stall", probability=1.0),
                FaultSpec("client-death", probability=0.0),
            ],
            seed=9,
        )
        before = plan._rng.getstate()
        assert plan.should_fire("wal-stall")
        assert not plan.should_fire("client-death")
        assert plan._rng.getstate() == before

    def test_magnitude(self) -> None:
        plan = FaultPlan([FaultSpec("wal-stall", magnitude=0.25)])
        assert plan.magnitude("wal-stall") == 0.25
        assert plan.magnitude("client-death") == 0.0

    def test_injection_points_registry(self) -> None:
        assert INJECTION_POINTS == {
            "abort-at-commit",
            "crash-mid-commit",
            "wal-stall",
            "client-death",
            "lock-timeout",
            "net-drop-frame",
            "net-delay-frame",
            "net-dup-decision",
            "conn-reset",
            "shard-crash",
            "coordinator-crash-window",
        }

    def test_fired_counts_injections(self) -> None:
        plan = FaultPlan([FaultSpec("shard-crash", max_fires=2)])
        assert plan.fired("shard-crash") == 0
        assert plan.should_fire("shard-crash")
        assert plan.fired("shard-crash") == 1
        assert plan.should_fire("shard-crash")
        assert not plan.should_fire("shard-crash")  # max_fires reached
        assert plan.fired("shard-crash") == 2


# ----------------------------------------------------------------------
# Engine hooks
# ----------------------------------------------------------------------
class TestEngineHooks:
    def test_abort_at_commit(self, db: Database) -> None:
        db.install_faults(FaultPlan([FaultSpec("abort-at-commit", max_fires=1)]))

        s = Session(db)
        s.begin("victim")
        s.update("Saving", 1, {"Balance": 1.0})
        with pytest.raises(FaultInjected) as excinfo:
            s.commit()
        assert excinfo.value.reason == "fault"
        assert db.active_transactions == ()

        # The fault released the victim's locks and left no versions.
        s2 = Session(db)
        s2.begin("after")
        s2.update("Saving", 1, {"Balance": 2.0})
        s2.commit()
        assert len(db.wal) == 1

    def test_lock_timeout_injection(self, db: Database) -> None:
        """The injected timeout expires a lock wait without any waiting."""
        db.install_faults(FaultPlan([FaultSpec("lock-timeout")]))

        holder = Session(db)
        holder.begin("holder")
        holder.update("Saving", 1, {"Balance": 1.0})

        waiter = Session(db)
        waiter.begin("waiter")
        with pytest.raises(LockTimeout) as excinfo:
            waiter.update("Saving", 1, {"Balance": 2.0})
        assert excinfo.value.reason == "lock-timeout"
        holder.commit()  # holder unaffected

    def test_no_plan_is_a_noop(self, db: Database) -> None:
        assert db.faults is None
        s = Session(db)
        s.begin("t")
        s.update("Saving", 1, {"Balance": 1.0})
        s.commit()
        assert len(db.wal.durable_records) == 1


# ----------------------------------------------------------------------
# Real lock-wait timeouts (no fault plan: the configured timeout expires)
# ----------------------------------------------------------------------
class TestLockWaitTimeout:
    def test_config_with_lock_timeout(self) -> None:
        config = EngineConfig.postgres().with_lock_timeout(0.05)
        assert config.lock_timeout == 0.05
        with pytest.raises(ValueError):
            EngineConfig.postgres().with_lock_timeout(-1.0)

    def test_threaded_waiter_times_out(self) -> None:
        db = make_bank_db(EngineConfig.postgres().with_lock_timeout(0.05))

        holder = Session(db)
        holder.begin("holder")
        holder.update("Saving", 1, {"Balance": 1.0})

        waiter = Session(db)
        waiter.begin("waiter")
        with pytest.raises(LockTimeout):
            waiter.update("Saving", 1, {"Balance": 2.0})
        assert db.active_transactions == (holder.transaction,)
        holder.commit()

    def test_wait_shorter_than_timeout_succeeds(self) -> None:
        """A waiter woken before the timeout proceeds normally."""
        import threading

        db = make_bank_db(EngineConfig.postgres().with_lock_timeout(5.0))

        holder = Session(db)
        holder.begin("holder")
        holder.update("Saving", 1, {"Balance": 1.0})
        threading.Timer(0.05, holder.commit).start()

        waiter = Session(db)
        waiter.begin("waiter")
        # First-updater-wins: once the holder commits, the waiter aborts
        # with a serialization failure, NOT a lock timeout.
        from repro.errors import SerializationFailure

        with pytest.raises(SerializationFailure):
            waiter.update("Saving", 1, {"Balance": 2.0})


# ----------------------------------------------------------------------
# Simulator hooks: WAL stalls and simulated lock-wait expiry
# ----------------------------------------------------------------------
class TestSimulatorHooks:
    def test_wal_stall_delays_flush(self) -> None:
        done: dict[str, float] = {}

        def run(plan: "FaultPlan | None") -> float:
            sim = Simulator()
            log = GroupCommitLog(
                sim, flush_time=0.01, commit_delay=0.0, faults=plan
            )

            def committer() -> None:
                log.commit_flush()
                done["at"] = sim.now

            sim.spawn(committer)
            sim.run_for(10.0)
            sim.shutdown()
            return done["at"]

        baseline = run(None)
        plan = FaultPlan([FaultSpec("wal-stall", magnitude=0.5)])
        stalled = run(plan)
        assert stalled == pytest.approx(baseline + 0.5)
        assert plan.fired("wal-stall") >= 1

    def test_sim_waiter_lock_timeout(self) -> None:
        """In simulated time the timeout races the blocker deterministically."""
        from repro.sim.client import SimWaiter

        sim = Simulator()
        db = make_bank_db(EngineConfig.postgres().with_lock_timeout(0.5))
        outcome: dict[str, object] = {}

        def holder() -> None:
            s = Session(db, waiter=SimWaiter(sim))
            s.begin("holder")
            s.update("Saving", 1, {"Balance": 1.0})
            sim.sleep(2.0)  # hold the lock well past the waiter's timeout
            s.commit()

        def waiter() -> None:
            sim.sleep(0.1)
            s = Session(db, waiter=SimWaiter(sim))
            s.begin("waiter")
            try:
                s.update("Saving", 1, {"Balance": 2.0})
                outcome["result"] = "acquired"
            except LockTimeout:
                outcome["result"] = "timeout"
                outcome["at"] = sim.now

        sim.spawn(holder)
        sim.spawn(waiter)
        sim.run_for(5.0)
        sim.shutdown()
        assert outcome["result"] == "timeout"
        assert outcome["at"] == pytest.approx(0.6)  # 0.1 start + 0.5 timeout


# ----------------------------------------------------------------------
# Client death in the threaded driver
# ----------------------------------------------------------------------
def test_client_death_stops_workers_cleanly() -> None:
    db = make_bank_db(customers=3)
    db.install_faults(FaultPlan([FaultSpec("client-death")]))
    driver = ThreadedDriver(
        db,
        SmallBankTransactions(),
        ThreadedDriverConfig(
            mpl=2, customers=3, hotspot=2, duration=0.2, join_grace=5.0
        ),
    )
    stats = driver.run()  # workers die immediately; run() still returns
    assert stats.total_commits == 0
    assert db.faults.fired("client-death") == 2
