"""Textbook histories from the SI literature, checked in one line each."""

from __future__ import annotations

import pytest

from repro.analysis.history import check_history_text, parse_history
from repro.errors import AnalysisError


class TestClassicHistories:
    def test_serial_history_is_serializable(self):
        report = check_history_text("r1(x) w1(x) c1 r2(x) w2(x) c2")
        assert report.serializable
        assert report.serial_order == (1, 2)

    def test_berenson_write_skew(self):
        """A5B from 'A Critique of ANSI SQL Isolation Levels' (1995)."""
        report = check_history_text(
            "r1(x) r1(y) r2(x) r2(y) w1(x) w2(y) c1 c2"
        )
        assert not report.serializable
        assert "write-skew" in report.anomalies

    def test_fekete_oneil_read_only_anomaly(self):
        """SIGMOD Record 2004 (reference [19]): x=savings, y=checking.

        H: R2(x0,0) R2(y0,0) R1(x0,0) W1(x1,20) C1 R3(x1,20) R3(y0,0) C3
           W2(y2,-11) C2
        """
        report = check_history_text(
            "r2(x) r2(y) r1(x) w1(x) c1 r3(x) r3(y) c3 w2(y) c2"
        )
        assert not report.serializable
        assert "read-only-transaction-anomaly" in report.anomalies
        assert "dangerous-structure" in report.anomalies

    def test_removing_the_reader_makes_it_serializable(self):
        """The same history without T3 — SI orders T2 before T1."""
        report = check_history_text("r2(x) r2(y) r1(x) w1(x) c1 w2(y) c2")
        assert report.serializable

    def test_lost_update_shape_is_a_cycle(self):
        """Two read-modify-writes on the same item from the same snapshot
        would be a lost update; SI prevents it, but the checker must flag
        the history if an engine ever produced it."""
        report = check_history_text("r1(x) r2(x) w1(x) c1 w2(x) c2")
        assert not report.serializable

    def test_si_read_consistency(self):
        """A reader spanning a committed writer sees the old version and
        orders cleanly before it."""
        report = check_history_text("r1(x) w2(x) c2 r1(x) r1(y) c1")
        assert report.serializable

    def test_aborted_transactions_are_ignored(self):
        report = check_history_text(
            "r1(x) r1(y) r2(x) r2(y) w1(x) w2(y) a1 c2"
        )
        assert report.serializable
        assert report.committed_count == 1


class TestParsing:
    def test_reads_resolve_against_snapshot(self):
        committed = parse_history("w1(x) c1 r2(x) c2 r3(x) c3")
        t2 = next(t for t in committed if t.txid == 2)
        t1 = next(t for t in committed if t.txid == 1)
        assert t2.read_version(("H", "x")) == t1.commit_ts

    def test_snapshot_taken_at_first_operation(self):
        committed = parse_history("r2(y) w1(x) c1 r2(x) c2")
        t2 = next(t for t in committed if t.txid == 2)
        # T2 started before T1 committed: it reads the bootstrap version.
        assert t2.read_version(("H", "x")) == 0

    def test_own_write_read_excluded(self):
        committed = parse_history("w1(x) r1(x) c1")
        (t1,) = committed
        assert t1.reads == ()

    def test_bad_token_rejected(self):
        with pytest.raises(AnalysisError):
            parse_history("r1(x) boom c1")

    def test_operation_after_commit_rejected(self):
        with pytest.raises(AnalysisError):
            parse_history("r1(x) c1 w1(y) c1")

    def test_unfinished_transaction_rejected(self):
        with pytest.raises(AnalysisError):
            parse_history("r1(x) w2(y) c2")

    def test_commit_without_operations_rejected(self):
        with pytest.raises(AnalysisError):
            parse_history("c1")

    def test_double_commit_rejected(self):
        with pytest.raises(AnalysisError):
            parse_history("r1(x) c1 c1")

    def test_empty_history_rejected(self):
        with pytest.raises(AnalysisError):
            parse_history("   ")
