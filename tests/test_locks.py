"""Tests for the lock manager and deadlock detection."""

from __future__ import annotations

import pytest

from repro.engine import LockManager, LockMode
from repro.errors import DeadlockError

ROW_A = ("T", 1)
ROW_B = ("T", 2)


@pytest.fixture
def lm() -> LockManager:
    return LockManager()


def test_exclusive_lock_grant_and_conflict(lm: LockManager):
    assert lm.try_acquire(1, ROW_A, LockMode.EXCLUSIVE) == frozenset()
    assert lm.holds(1, ROW_A, LockMode.EXCLUSIVE)
    assert lm.try_acquire(2, ROW_A, LockMode.EXCLUSIVE) == frozenset({1})
    assert not lm.holds(2, ROW_A)


def test_reacquire_is_idempotent(lm: LockManager):
    assert lm.try_acquire(1, ROW_A, LockMode.EXCLUSIVE) == frozenset()
    assert lm.try_acquire(1, ROW_A, LockMode.EXCLUSIVE) == frozenset()
    assert lm.rows_held_by(1) == frozenset({ROW_A})


def test_shared_locks_are_compatible(lm: LockManager):
    assert lm.try_acquire(1, ROW_A, LockMode.SHARED) == frozenset()
    assert lm.try_acquire(2, ROW_A, LockMode.SHARED) == frozenset()
    assert lm.holders(ROW_A) == {1: LockMode.SHARED, 2: LockMode.SHARED}


def test_shared_blocks_exclusive_and_vice_versa(lm: LockManager):
    lm.try_acquire(1, ROW_A, LockMode.SHARED)
    assert lm.try_acquire(2, ROW_A, LockMode.EXCLUSIVE) == frozenset({1})
    lm.try_acquire(3, ROW_B, LockMode.EXCLUSIVE)
    assert lm.try_acquire(4, ROW_B, LockMode.SHARED) == frozenset({3})


def test_upgrade_shared_to_exclusive(lm: LockManager):
    lm.try_acquire(1, ROW_A, LockMode.SHARED)
    assert lm.try_acquire(1, ROW_A, LockMode.EXCLUSIVE) == frozenset()
    assert lm.holds(1, ROW_A, LockMode.EXCLUSIVE)


def test_upgrade_blocked_by_other_sharer(lm: LockManager):
    lm.try_acquire(1, ROW_A, LockMode.SHARED)
    lm.try_acquire(2, ROW_A, LockMode.SHARED)
    assert lm.try_acquire(1, ROW_A, LockMode.EXCLUSIVE) == frozenset({2})
    # The failed upgrade must not have downgraded or lost the shared lock.
    assert lm.holds(1, ROW_A, LockMode.SHARED)


def test_release_all_frees_rows(lm: LockManager):
    lm.try_acquire(1, ROW_A, LockMode.EXCLUSIVE)
    lm.try_acquire(1, ROW_B, LockMode.EXCLUSIVE)
    freed = lm.release_all(1)
    assert set(freed) == {ROW_A, ROW_B}
    assert lm.try_acquire(2, ROW_A, LockMode.EXCLUSIVE) == frozenset()
    assert lm.rows_held_by(1) == frozenset()


def test_release_all_unknown_txn_is_noop(lm: LockManager):
    assert lm.release_all(99) == []


def test_multiple_blockers_reported(lm: LockManager):
    lm.try_acquire(1, ROW_A, LockMode.SHARED)
    lm.try_acquire(2, ROW_A, LockMode.SHARED)
    assert lm.try_acquire(3, ROW_A, LockMode.EXCLUSIVE) == frozenset({1, 2})


class TestDeadlockDetection:
    def test_two_party_cycle_detected(self, lm: LockManager):
        lm.begin_wait(1, [2])
        with pytest.raises(DeadlockError):
            lm.begin_wait(2, [1])
        # The failed registration leaves no edge behind.
        assert lm.waiting_for(2) == frozenset()

    def test_three_party_cycle_detected(self, lm: LockManager):
        lm.begin_wait(1, [2])
        lm.begin_wait(2, [3])
        with pytest.raises(DeadlockError):
            lm.begin_wait(3, [1])

    def test_chain_without_cycle_is_fine(self, lm: LockManager):
        lm.begin_wait(1, [2])
        lm.begin_wait(2, [3])
        lm.begin_wait(4, [3])
        assert lm.waiting_for(1) == frozenset({2})

    def test_end_wait_clears_edges(self, lm: LockManager):
        lm.begin_wait(1, [2])
        lm.end_wait(1)
        lm.begin_wait(2, [1])  # no cycle anymore

    def test_self_wait_rejected(self, lm: LockManager):
        with pytest.raises(ValueError):
            lm.begin_wait(1, [1])

    def test_release_all_clears_waits(self, lm: LockManager):
        lm.begin_wait(1, [2])
        lm.release_all(1)
        assert lm.waiting_for(1) == frozenset()

    def test_waiting_on_multiple_blockers(self, lm: LockManager):
        lm.begin_wait(3, [1, 2])
        with pytest.raises(DeadlockError):
            lm.begin_wait(2, [3])
