"""Tests for the materialization / promotion spec transforms."""

from __future__ import annotations

import pytest

from repro.core import (
    CONFLICT_TABLE,
    AccessKind,
    ProgramSet,
    ProgramSpec,
    build_sdg,
    materialize_all,
    materialize_edge,
    promote_all,
    promote_edge,
    read,
    read_const,
    tables_updated_by,
    write,
    write_const,
)
from repro.errors import SpecError


def skew_mix() -> ProgramSet:
    return ProgramSet(
        [
            ProgramSpec(
                "P1",
                ("x",),
                (read("A", "x", "v"), read("B", "x", "v"), write("A", "x", "v")),
            ),
            ProgramSpec(
                "P2",
                ("x",),
                (read("A", "x", "v"), read("B", "x", "v"), write("B", "x", "v")),
            ),
        ],
        name="skew",
    )


class TestMaterializeEdge:
    def test_adds_conflict_writes_to_both_programs(self):
        fixed, mods = materialize_edge(skew_mix(), "P1", "P2")
        assert CONFLICT_TABLE in fixed["P1"].tables_written()
        assert CONFLICT_TABLE in fixed["P2"].tables_written()
        assert {m.program for m in mods} == {"P1", "P2"}
        assert all(m.kind == "materialize" for m in mods)

    def test_edge_becomes_protected(self):
        fixed, _ = materialize_edge(skew_mix(), "P1", "P2")
        sdg = build_sdg(fixed)
        assert not sdg.is_vulnerable("P1", "P2")
        # One direction fixed suffices here: P2 -> P1 also shares the
        # Conflict write, protecting it too.
        assert sdg.is_si_serializable()

    def test_non_vulnerable_edge_rejected(self):
        mix = skew_mix()
        fixed, _ = materialize_edge(mix, "P1", "P2")
        with pytest.raises(SpecError):
            materialize_edge(fixed, "P1", "P2")

    def test_unknown_program_rejected(self):
        with pytest.raises(SpecError):
            materialize_edge(skew_mix(), "Nope", "P2")

    def test_constant_row_conflict_materializes_on_shared_row(self):
        mix = ProgramSet(
            [
                ProgramSpec("R", (), (read_const("T", "row0", "v"),)),
                ProgramSpec("W", (), (write_const("T", "row0", "v"),
                                      read_const("T", "row0", "v"))),
            ],
            name="const",
        )
        fixed, mods = materialize_edge(mix, "R", "W")
        assert any(m.key is None for m in mods)
        assert not build_sdg(fixed).is_vulnerable("R", "W")

    def test_idempotent_additions(self):
        """Materializing two different edges that share a program adds one
        Conflict write per (program, key)."""
        fixed, _ = materialize_edge(skew_mix(), "P1", "P2")
        conflict_writes = [
            a for a in fixed["P1"].accesses if a.table == CONFLICT_TABLE
        ]
        assert len(conflict_writes) == 1


class TestPromoteEdge:
    def test_adds_identity_write_to_source_only(self):
        fixed, mods = promote_edge(skew_mix(), "P1", "P2", via="update")
        # P1 reads B which P2 writes -> P1 gets an identity write on B.
        assert "B" in fixed["P1"].tables_written()
        assert fixed["P2"].accesses == skew_mix()["P2"].accesses
        assert [m.kind for m in mods] == ["promote-upd"]
        assert not build_sdg(fixed).is_vulnerable("P1", "P2")

    def test_identity_write_reuses_read_columns(self):
        fixed, _ = promote_edge(skew_mix(), "P1", "P2", via="update")
        added = [
            a
            for a in fixed["P1"].accesses
            if a.table == "B" and a.kind is AccessKind.WRITE
        ]
        assert added and added[0].columns == frozenset({"v"})

    def test_sfu_promotion_replaces_the_read(self):
        fixed, mods = promote_edge(skew_mix(), "P1", "P2", via="sfu")
        kinds = {
            (a.table, a.kind) for a in fixed["P1"].accesses
        }
        assert ("B", AccessKind.CC_WRITE) in kinds
        assert ("B", AccessKind.READ) not in kinds
        assert [m.kind for m in mods] == ["promote-sfu"]
        # Fixed under commercial semantics...
        assert not build_sdg(fixed, sfu_is_write=True).is_vulnerable("P1", "P2")
        # ...but NOT under PostgreSQL semantics (Section II-C).
        assert build_sdg(fixed, sfu_is_write=False).is_vulnerable("P1", "P2")

    def test_promote_requires_a_matching_read(self):
        mix = ProgramSet(
            [
                # P reads via predicate we model as a constant row and has
                # no parameterized read to promote... here simulate a spec
                # hole: the read was dropped.
                ProgramSpec("P", ("x",), (read("A", "x", "v"),)),
                ProgramSpec("Q", ("x",), (write("A", "x", "v"),)),
            ]
        )
        fixed, _ = promote_edge(mix, "P", "Q", via="update")
        assert "A" in fixed["P"].tables_written()

    def test_non_vulnerable_edge_rejected(self):
        fixed, _ = promote_edge(skew_mix(), "P1", "P2")
        with pytest.raises(SpecError):
            promote_edge(fixed, "P1", "P2")


class TestWholeGraphVariants:
    def test_materialize_all_removes_every_vulnerability(self):
        fixed, _ = materialize_all(skew_mix())
        sdg = build_sdg(fixed)
        assert sdg.vulnerable_edges() == ()
        assert sdg.is_si_serializable()

    def test_promote_all_removes_every_vulnerability(self):
        fixed, _ = promote_all(skew_mix())
        sdg = build_sdg(fixed)
        assert sdg.vulnerable_edges() == ()
        assert sdg.is_si_serializable()

    def test_promote_all_sfu_under_commercial_semantics(self):
        fixed, _ = promote_all(skew_mix(), via="sfu")
        assert build_sdg(fixed, sfu_is_write=True).vulnerable_edges() == ()

    def test_tables_updated_by_reports_new_writes(self):
        mix = skew_mix()
        fixed, _ = materialize_all(mix)
        table = tables_updated_by(mix, fixed)
        assert table == {
            "P1": (CONFLICT_TABLE,),
            "P2": (CONFLICT_TABLE,),
        }

    def test_tables_updated_by_empty_when_unchanged(self):
        mix = skew_mix()
        assert tables_updated_by(mix, mix) == {}
