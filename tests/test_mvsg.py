"""MVSG construction and cycle detection on hand-built histories."""

from __future__ import annotations

from repro.analysis import (
    CommittedTransaction,
    MultiVersionSerializationGraph,
    check_history,
    classify_cycle,
)
from repro.engine.transaction import PredicateRead

X = ("T", "x")
Y = ("T", "y")


def txn(
    txid,
    *,
    start=None,
    commit=None,
    reads=(),
    writes=(),
    label="",
    read_only_label=False,
    predicates=(),
):
    return CommittedTransaction(
        txid=txid,
        label=label or f"T{txid}",
        start_ts=start if start is not None else txid * 10,
        snapshot_ts=start if start is not None else txid * 10,
        commit_ts=commit if commit is not None else txid * 10 + 5,
        reads=tuple(reads),
        writes=tuple(writes),
        cc_writes=(),
        predicate_reads=tuple(predicates),
    )


class TestEdges:
    def test_wr_edge_from_version_writer_to_reader(self):
        t1 = txn(1, start=1, commit=2, writes=(X,))
        t2 = txn(2, start=3, commit=4, reads=((X, 2),))
        graph = MultiVersionSerializationGraph([t1, t2])
        assert any(
            e.kind == "wr" and e.source == 1 and e.target == 2
            for e in graph.edges
        )
        assert graph.is_serializable

    def test_ww_edges_follow_version_order(self):
        t1 = txn(1, start=1, commit=2, writes=(X,))
        t2 = txn(2, start=3, commit=4, writes=(X,))
        t3 = txn(3, start=5, commit=6, writes=(X,))
        graph = MultiVersionSerializationGraph([t1, t2, t3])
        ww = [(e.source, e.target) for e in graph.edges if e.kind == "ww"]
        assert ww == [(1, 2), (2, 3)]

    def test_rw_edge_to_next_version_writer(self):
        t1 = txn(1, start=1, commit=10, writes=(X,))
        # t2 read the bootstrap version (ts 0) of X while t1 overwrote it.
        t2 = txn(2, start=2, commit=4, reads=((X, 0),))
        graph = MultiVersionSerializationGraph([t1, t2])
        assert any(
            e.kind == "rw" and e.source == 2 and e.target == 1
            for e in graph.edges
        )

    def test_rw_targets_immediate_successor_only(self):
        t1 = txn(1, start=1, commit=2, writes=(X,))
        t2 = txn(2, start=3, commit=4, writes=(X,))
        reader = txn(3, start=1, commit=5, reads=((X, 0),))
        graph = MultiVersionSerializationGraph([t1, t2, reader])
        rw = [(e.source, e.target) for e in graph.edges if e.kind == "rw"]
        assert (3, 1) in rw and (3, 2) not in rw

    def test_no_self_edges(self):
        t1 = txn(1, start=1, commit=2, reads=((X, 0),), writes=(X,))
        graph = MultiVersionSerializationGraph([t1])
        assert graph.edges == []


class TestCycles:
    def write_skew_history(self):
        # Both read X and Y at snapshot 0; t1 writes X, t2 writes Y.
        t1 = txn(1, start=1, commit=5, reads=((X, 0), (Y, 0)), writes=(X,))
        t2 = txn(2, start=2, commit=6, reads=((X, 0), (Y, 0)), writes=(Y,))
        return [t1, t2]

    def test_write_skew_cycle_detected(self):
        graph = MultiVersionSerializationGraph(self.write_skew_history())
        cycle = graph.find_cycle()
        assert cycle is not None
        assert sorted(cycle.kinds) == ["rw", "rw"]
        assert not graph.is_serializable
        assert graph.topological_commit_order() is None

    def test_write_skew_classified(self):
        graph = MultiVersionSerializationGraph(self.write_skew_history())
        cycle = graph.find_cycle()
        labels = classify_cycle(cycle, graph.transactions)
        assert "write-skew" in labels
        assert "dangerous-structure" in labels

    def test_serial_history_has_topological_order(self):
        t1 = txn(1, start=1, commit=2, writes=(X,))
        t2 = txn(2, start=3, commit=4, reads=((X, 2),), writes=(Y,))
        t3 = txn(3, start=5, commit=6, reads=((Y, 4),))
        graph = MultiVersionSerializationGraph([t1, t2, t3])
        assert graph.topological_commit_order() == (1, 2, 3)

    def test_three_party_cycle(self):
        # t1 writes X; t3 read X before t1 (rw t3->t1); t1 -> wr -> t2
        # reads X; t2 writes Y that t3 read (rw t2? ...) build directly:
        t1 = txn(1, start=3, commit=8, writes=(X,))
        t2 = txn(2, start=9, commit=12, reads=((X, 8),), writes=(Y,))
        t3 = txn(3, start=1, commit=4, reads=((X, 0), (Y, 0)), writes=(("T", "z"),))
        graph = MultiVersionSerializationGraph([t1, t2, t3])
        cycle = graph.find_cycle()
        # t3 -rw-> t1 (read X@0, t1 wrote X), t1 -wr-> t2, t2 ... no edge
        # back to t3 from t2?  t3 read Y@0 and t2 wrote Y -> rw t3->t2.
        # No cycle: t3 points at both, nothing returns to t3.
        assert cycle is None

    def test_read_only_anomaly_shape(self):
        """The Fekete/O'Neil/O'Neil read-only anomaly: the cycle includes a
        read-only transaction."""
        S = ("Saving", 1)
        C = ("Checking", 1)
        ts = txn(1, start=3, commit=4, reads=((S, 0),), writes=(S,), label="TS")
        bal = txn(
            2, start=5, commit=6, reads=((S, 4), (C, 0)), label="Bal"
        )
        wc = txn(
            3, start=2, commit=7, reads=((S, 0), (C, 0)), writes=(C,), label="WC"
        )
        graph = MultiVersionSerializationGraph([ts, bal, wc])
        cycle = graph.find_cycle()
        assert cycle is not None
        labels = classify_cycle(cycle, graph.transactions)
        assert "read-only-transaction-anomaly" in labels
        assert "dangerous-structure" in labels

    def test_check_history_facade(self):
        report = check_history(self.write_skew_history())
        assert not report.serializable
        assert "write-skew" in report.anomalies
        assert "NOT serializable" in report.describe()
        ok = check_history([txn(1, writes=(X,))])
        assert ok.serializable and ok.serial_order == (1,)


class TestPhantomEdges:
    def test_predicate_reader_gets_conservative_edge(self):
        reader = txn(
            1,
            start=1,
            commit=3,
            predicates=(PredicateRead("T", "v > 0", ()),),
        )
        writer = txn(2, start=2, commit=5, writes=(X,))
        graph = MultiVersionSerializationGraph(
            [reader, writer], phantom_edges=True
        )
        assert any(e.kind == "predicate-rw" for e in graph.edges)

    def test_phantom_edges_off_by_default(self):
        reader = txn(
            1, start=1, commit=3, predicates=(PredicateRead("T", "v > 0", ()),)
        )
        writer = txn(2, start=2, commit=5, writes=(X,))
        graph = MultiVersionSerializationGraph([reader, writer])
        assert not any(e.kind == "predicate-rw" for e in graph.edges)

    def test_earlier_writer_not_phantom_suspect(self):
        reader = txn(
            1, start=10, commit=12, predicates=(PredicateRead("T", "p", ()),)
        )
        writer = txn(2, start=1, commit=2, writes=(X,))
        graph = MultiVersionSerializationGraph(
            [reader, writer], phantom_edges=True
        )
        assert not any(e.kind == "predicate-rw" for e in graph.edges)
