"""Serializability is preserved over the wire.

The MVSG checker attaches to the *server's* database while a
:class:`ThreadedDriver` hammers it over TCP at MPL 8 — the paper's
guarantee engines (S2PL, SSI) must still produce acyclic multiversion
serialization graphs when every statement crosses a socket, pipelining,
deferred BEGINs and piggybacked COMMITs included.  (Plain SI makes no
such promise; its over-the-wire behaviour is covered by the parity and
benchmark suites instead.)
"""

import pytest

import repro
from repro.analysis import SerializabilityChecker
from repro.engine import EngineConfig
from repro.net import DatabaseServer
from repro.smallbank import PopulationConfig, build_database, get_strategy
from repro.workload.driver import ThreadedDriver, ThreadedDriverConfig

MPL = 8


def run_wire_workload(config: EngineConfig):
    db = build_database(
        config,
        PopulationConfig(
            customers=20,
            min_saving=1_000.0,
            max_saving=1_000.0,
            min_checking=1_000.0,
            max_checking=1_000.0,
        ),
    )
    checker = SerializabilityChecker(db)
    server = DatabaseServer(db, max_connections=MPL + 2).start_in_thread()
    try:
        conn = repro.connect(
            f"tcp://127.0.0.1:{server.port}", pool_size=MPL, timeout=30.0
        )
        driver = ThreadedDriver(
            None,
            get_strategy("base-si").transactions(),
            ThreadedDriverConfig(
                mpl=MPL, customers=20, hotspot=5, mix="balance60",
                duration=0.5, seed=13,
            ),
            connection=conn,
        )
        stats = driver.run()
        conn.close()
    finally:
        server.shutdown()
    server_stats = server.stats()
    assert server_stats["active_transactions"] == 0
    assert server_stats["connections_active"] == 0
    return checker.report(), stats


@pytest.mark.parametrize("engine", ["s2pl", "ssi"])
def test_guarantee_engines_stay_acyclic_over_the_wire(engine):
    config = getattr(EngineConfig, engine)()
    report, stats = run_wire_workload(config)
    assert report.committed_count > MPL, "the run made no real progress"
    assert report.serializable, (engine, report.describe())


def test_plain_si_makes_progress_over_the_wire():
    report, stats = run_wire_workload(EngineConfig.postgres())
    assert report.committed_count > MPL
