"""Wire-protocol framing unit tests (no sockets, no server).

The protocol is length-prefixed JSON (DESIGN.md §11); these tests pin the
edge cases the server's robustness contract depends on: fragmented reads,
oversized frames, zero-length frames, garbage payloads, and the decoder's
poisoning behaviour after a violation.
"""

import struct

import pytest

from repro.errors import (
    ApplicationRollback,
    ConnectionClosed,
    ProtocolError,
    ReproError,
    SerializationFailure,
    SsiAbort,
)
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    LENGTH_BYTES,
    REQUEST_OPS,
    FrameDecoder,
    check_length,
    decode_payload,
    encode_frame,
    error_payload,
    raise_error_payload,
)


class TestFraming:
    def test_round_trip(self):
        frame = encode_frame({"op": "PING", "n": 1})
        decoder = FrameDecoder()
        (message,) = decoder.feed(frame)
        assert message == {"op": "PING", "n": 1}
        assert decoder.pending_bytes == 0

    def test_length_prefix_is_big_endian_u32(self):
        frame = encode_frame({"op": "PING"})
        (length,) = struct.unpack(">I", frame[:LENGTH_BYTES])
        assert length == len(frame) - LENGTH_BYTES

    def test_byte_at_a_time_reassembly(self):
        """A frame arriving in 1-byte TCP fragments decodes identically."""
        frame = encode_frame({"op": "EXEC", "params": {"v": 1.5}})
        decoder = FrameDecoder()
        messages = []
        for i in range(len(frame)):
            messages.extend(decoder.feed(frame[i : i + 1]))
        assert messages == [{"op": "EXEC", "params": {"v": 1.5}}]

    def test_split_across_length_prefix_boundary(self):
        frame = encode_frame({"op": "PING"})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:2]) == []  # half a length prefix
        assert decoder.pending_bytes == 2
        assert decoder.feed(frame[2:]) == [{"op": "PING"}]

    def test_multiple_frames_in_one_feed(self):
        """A pipelining client's burst decodes to every frame in order."""
        data = b"".join(encode_frame({"op": "PING", "i": i}) for i in range(5))
        decoder = FrameDecoder()
        messages = decoder.feed(data)
        assert [m["i"] for m in messages] == [0, 1, 2, 3, 4]

    def test_partial_trailing_frame_stays_buffered(self):
        first = encode_frame({"op": "PING", "i": 0})
        second = encode_frame({"op": "PING", "i": 1})
        decoder = FrameDecoder()
        messages = decoder.feed(first + second[:-3])
        assert [m["i"] for m in messages] == [0]
        assert decoder.pending_bytes == len(second) - 3
        assert decoder.feed(second[-3:]) == [{"op": "PING", "i": 1}]


class TestFramingViolations:
    def test_oversized_frame_rejected(self):
        decoder = FrameDecoder(max_frame=64)
        huge = struct.pack(">I", 65)
        with pytest.raises(ProtocolError):
            decoder.feed(huge)

    def test_oversized_length_rejected_before_payload_arrives(self):
        """The length prefix alone triggers the rejection — the decoder
        never buffers an attacker-controlled amount of memory."""
        decoder = FrameDecoder(max_frame=64)
        with pytest.raises(ProtocolError):
            decoder.feed(struct.pack(">I", 2**31))

    def test_two_gigabyte_header_poisons_a_default_decoder(self):
        """A malicious 2 GiB length prefix (0x80000000) dies against the
        stock 8 MiB limit without allocating anything, and the decoder
        stays poisoned for the rest of the connection."""
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError) as excinfo:
            decoder.feed(struct.pack(">I", 0x80000000))
        assert str(DEFAULT_MAX_FRAME) in str(excinfo.value)
        # Only the 4-byte header was ever buffered — never the payload.
        assert decoder.pending_bytes <= LENGTH_BYTES
        with pytest.raises(ProtocolError):
            decoder.feed(encode_frame({"op": "PING"}))

    def test_eof_mid_frame_is_deterministic_connection_closed(self):
        """A peer dying mid-frame surfaces as ConnectionClosed — never a
        hang waiting for bytes that will not come, never a partial op —
        and poisons the decoder so a late feed cannot quietly resume and
        misparse the stream."""
        frame = encode_frame({"op": "PING"})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:7]) == []  # prefix + truncated payload
        with pytest.raises(ConnectionClosed, match="mid-frame"):
            decoder.feed_eof()
        with pytest.raises(ConnectionClosed):
            decoder.feed(frame[7:])  # poisoned: the late bytes are dead

    def test_eof_inside_length_prefix_is_connection_closed(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"\x00\x00") == []  # 2 of the 4 length bytes
        with pytest.raises(ConnectionClosed):
            decoder.feed_eof()

    def test_eof_at_frame_boundary_is_clean(self):
        """EOF between frames is an orderly shutdown: no error, and the
        decoder stays usable (tests reuse it; real wires do not)."""
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame({"op": "PING"})) == [{"op": "PING"}]
        decoder.feed_eof()  # no buffered bytes: no-op
        assert decoder.feed(encode_frame({"op": "PING"})) == [{"op": "PING"}]

    def test_max_frame_is_configurable_at_the_boundary(self):
        """A payload of exactly ``max_frame`` bytes decodes; one byte more
        is rejected by an otherwise identical decoder."""
        payload = b'{"op": "%s"}' % (b"x" * 20)
        limit = len(payload)
        frame = struct.pack(">I", limit) + payload
        assert FrameDecoder(max_frame=limit).feed(frame) == [
            {"op": "x" * 20}
        ]
        with pytest.raises(ProtocolError):
            FrameDecoder(max_frame=limit - 1).feed(frame)

    def test_zero_length_frame_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(struct.pack(">I", 0))

    def test_garbage_payload_rejected(self):
        payload = b"\xff\xfenot json"
        data = struct.pack(">I", len(payload)) + payload
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(data)

    def test_non_object_json_rejected(self):
        payload = b"[1, 2, 3]"
        data = struct.pack(">I", len(payload)) + payload
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(data)

    def test_decoder_poisoned_after_violation(self):
        """After one violation every further feed re-raises: a desynced
        byte stream can never be re-trusted mid-connection."""
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(struct.pack(">I", 0))
        with pytest.raises(ProtocolError):
            decoder.feed(encode_frame({"op": "PING"}))  # well-formed, still dead

    def test_check_length_bounds(self):
        assert check_length(1) == 1
        assert check_length(DEFAULT_MAX_FRAME) == DEFAULT_MAX_FRAME
        with pytest.raises(ProtocolError):
            check_length(0)
        with pytest.raises(ProtocolError):
            check_length(DEFAULT_MAX_FRAME + 1)

    def test_decode_payload_rejects_non_json(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"{truncated")
        with pytest.raises(ProtocolError):
            decode_payload(b'"a bare string"')


class TestRequestOps:
    def test_cluster_and_maintenance_ops_are_registered(self):
        for op in ("VACUUM", "PREPARE_2PC", "COMMIT_2PC", "ABORT_2PC"):
            assert op in REQUEST_OPS

    def test_ops_are_unique(self):
        assert len(REQUEST_OPS) == len(set(REQUEST_OPS))


class TestErrorRoundTrip:
    @pytest.mark.parametrize(
        "exc_type",
        [SerializationFailure, SsiAbort, ApplicationRollback, ConnectionClosed],
    )
    def test_error_class_survives_the_wire(self, exc_type):
        payload = error_payload(exc_type("boom"))
        assert payload["ok"] is False
        assert payload["error"]["code"] == exc_type.code
        with pytest.raises(exc_type) as excinfo:
            raise_error_payload(payload["error"])
        assert "boom" in str(excinfo.value)

    def test_subclass_code_wins(self):
        """``SsiAbort`` must not round-trip as its ``SerializationFailure``
        base — retry policies distinguish them."""
        payload = error_payload(SsiAbort("cert failure"))
        assert payload["error"]["code"] == "ssi"
        with pytest.raises(SsiAbort):
            raise_error_payload(payload["error"])

    def test_unknown_code_degrades_to_repro_error(self):
        with pytest.raises(ReproError):
            raise_error_payload({"code": "no-such-code", "message": "hm"})

    def test_malformed_error_payload_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            raise_error_payload(None)
        with pytest.raises(ProtocolError):
            raise_error_payload("not a mapping")

    def test_frame_survives_encode_decode(self):
        payload = error_payload(SerializationFailure("w-w conflict on x=7"))
        (decoded,) = FrameDecoder().feed(encode_frame(payload))
        with pytest.raises(SerializationFailure):
            raise_error_payload(decoded["error"])
