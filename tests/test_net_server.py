"""DatabaseServer lifecycle, admission and robustness tests.

Everything here runs a real server on a loopback ephemeral port (event
loop on a daemon thread) and talks to it over real sockets — the same
configuration ``benchmarks/bench_net.py`` measures.  The load-bearing
assertion is the robustness contract: a client that vanishes
mid-transaction must have its transaction aborted and its locks released
before anyone else blocks on them, and nothing may leak.
"""

import socket
import struct
import time

import pytest

import repro
from repro.engine import EngineConfig
from repro.errors import ConnectionClosed, ProtocolError
from repro.net import DatabaseServer
from repro.net.client import WireConnection
from repro.net.protocol import FrameDecoder, encode_frame, read_frame_sync
from repro.smallbank import PopulationConfig, build_database


def make_server(config=None, **kwargs):
    db = build_database(
        config or EngineConfig.postgres(), PopulationConfig(customers=10)
    )
    return DatabaseServer(db, **kwargs).start_in_thread()


def wait_until(predicate, timeout=5.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


class TestLifecycle:
    def test_start_serve_shutdown(self):
        server = make_server()
        try:
            conn = repro.connect(f"tcp://127.0.0.1:{server.port}")
            assert conn.ping()
            stats = conn.stats()
            assert stats["backend"] == "network"
            assert stats["isolation"] == "si"
            assert stats["connections_active"] >= 1
            conn.close()
        finally:
            server.shutdown()
        assert server.stats()["connections_active"] == 0

    def test_stats_reports_engine_isolation(self):
        """Clients gate wire shortcuts on this field — it must track the
        hosted engine, not a default."""
        server = make_server(EngineConfig.s2pl())
        try:
            conn = repro.connect(f"tcp://127.0.0.1:{server.port}")
            assert conn.stats()["isolation"] == "s2pl"
            conn.close()
        finally:
            server.shutdown()

    def test_double_start_rejected(self):
        server = make_server()
        try:
            with pytest.raises(RuntimeError):
                server.start_in_thread()
        finally:
            server.shutdown()

    def test_shutdown_aborts_in_flight_transaction(self):
        server = make_server()
        wire = WireConnection("127.0.0.1", server.port)
        wire.call("BEGIN", {"label": "doomed"})
        wire.call("SELECT_FOR_UPDATE", {"table": "Saving", "key": 1})
        assert server.stats()["active_transactions"] == 1
        server.shutdown()  # must not hang on the open transaction
        assert server.stats()["active_transactions"] == 0
        assert server.stats()["connections_active"] == 0
        wire.close()

    def test_sessions_do_not_leak(self):
        server = make_server()
        try:
            conn = repro.connect(f"tcp://127.0.0.1:{server.port}", pool_size=2)
            for _ in range(5):
                session = conn.session()
                session.begin("t")
                session.select("Saving", 1)
                session.commit()
                session.close()
            conn.close()
            wait_until(
                lambda: server.stats()["connections_active"] == 0,
                message="connection reaping",
            )
            stats = server.stats()
            assert stats["sessions_opened"] == stats["sessions_closed"]
            assert stats["active_transactions"] == 0
        finally:
            server.shutdown()


class TestDisconnectMidTransaction:
    def test_abrupt_disconnect_aborts_and_releases_locks(self):
        """The tentpole robustness contract: kill a client that holds a
        row lock mid-transaction and the lock must free — a second
        session acquires it and commits, promptly, with no leak."""
        server = make_server()
        try:
            victim = WireConnection("127.0.0.1", server.port)
            victim.call("BEGIN", {"label": "doomed"})
            row = victim.call(
                "SELECT_FOR_UPDATE", {"table": "Saving", "key": 1}
            )["row"]
            assert row is not None
            assert server.stats()["active_transactions"] == 1

            victim.close()  # vanish without COMMIT/ROLLBACK

            wait_until(
                lambda: server.stats()["active_transactions"] == 0,
                message="server-side abort of the orphaned transaction",
            )
            # The row lock must be gone: a fresh session takes it and
            # writes through without blocking.
            conn = repro.connect(f"tcp://127.0.0.1:{server.port}")
            session = conn.session()
            session.begin("survivor")
            fresh = session.select_for_update("Saving", 1)
            assert fresh is not None
            session.write("Saving", 1, {**fresh, "Balance": 42.0})
            session.commit()
            session.close()
            conn.close()
            wait_until(
                lambda: server.stats()["connections_active"] == 0,
                message="connection reaping",
            )
            stats = server.stats()
            assert stats["active_transactions"] == 0
            assert stats["sessions_opened"] == stats["sessions_closed"]
        finally:
            server.shutdown()

    def test_disconnect_with_pipelined_writes_rolls_back(self):
        """Fire-and-forget frames followed by EOF: the staged write must
        not survive (EOF ≡ rollback, never an implicit commit)."""
        server = make_server()
        try:
            raw = socket.create_connection(("127.0.0.1", server.port))
            raw.sendall(encode_frame({"op": "BEGIN", "label": "torn"}))
            raw.sendall(
                encode_frame(
                    {
                        "op": "WRITE",
                        "table": "Saving",
                        "key": 1,
                        "row": {"CustomerId": 1, "Balance": -999.0},
                    }
                )
            )
            raw.close()  # EOF before any COMMIT
            wait_until(
                lambda: server.stats()["active_transactions"] == 0,
                message="rollback of the torn transaction",
            )
            conn = repro.connect(f"tcp://127.0.0.1:{server.port}")
            session = conn.session()
            session.begin("reader")
            row = session.select("Saving", 1)
            session.commit()
            session.close()
            conn.close()
            assert row["Balance"] != -999.0
        finally:
            server.shutdown()


class TestAdmission:
    def test_backpressure_parks_then_serves(self):
        server = make_server(max_connections=1, backpressure=True)
        try:
            first = WireConnection("127.0.0.1", server.port)
            assert first.call("PING", {})["pong"]
            second = WireConnection("127.0.0.1", server.port)
            # Parked: the request sits unread until a slot frees.
            second.send("PING", {})
            wait_until(
                lambda: server.stats()["connections_parked"] == 1,
                message="second connection to park",
            )
            first.close()
            assert second.recv()["pong"]  # admitted, queued frame served
            second.close()
        finally:
            server.shutdown()

    def test_reject_mode_refuses_over_capacity(self):
        server = make_server(max_connections=1, backpressure=False)
        try:
            first = WireConnection("127.0.0.1", server.port)
            assert first.call("PING", {})["pong"]
            second = WireConnection("127.0.0.1", server.port)
            with pytest.raises(ConnectionClosed):
                second.call("PING", {})
            assert server.stats()["rejected_total"] == 1
            first.close()
            second.close()
        finally:
            server.shutdown()

    def test_max_connections_validation(self):
        db = build_database(
            EngineConfig.postgres(), PopulationConfig(customers=2)
        )
        with pytest.raises(ValueError):
            DatabaseServer(db, max_connections=0)


class TestProtocolViolations:
    def test_garbage_bytes_get_error_frame_then_close(self):
        server = make_server()
        try:
            raw = socket.create_connection(("127.0.0.1", server.port))
            raw.sendall(struct.pack(">I", 0))  # zero-length frame
            response = read_frame_sync(raw, max_frame=server.max_frame)
            assert response is not None and response["ok"] is False
            assert response["error"]["code"] == "protocol"
            # The server hangs up after the error frame.
            assert read_frame_sync(raw, max_frame=server.max_frame) is None
            raw.close()
            wait_until(
                lambda: server.stats()["connections_active"] == 0,
                message="poisoned connection reaping",
            )
            assert server.stats()["protocol_errors_total"] >= 1
        finally:
            server.shutdown()

    def test_oversized_frame_kills_only_that_connection(self):
        server = make_server(max_frame=1024)
        try:
            raw = socket.create_connection(("127.0.0.1", server.port))
            raw.sendall(struct.pack(">I", 1 << 30))
            decoder = FrameDecoder()  # client-side default limit is fine
            chunk = raw.recv(65536)
            (response,) = decoder.feed(chunk)
            assert response["ok"] is False
            raw.close()
            # An unrelated connection is unaffected.
            healthy = WireConnection("127.0.0.1", server.port)
            assert healthy.call("PING", {})["pong"]
            healthy.close()
        finally:
            server.shutdown()

    def test_unknown_op_is_an_error_response_not_a_hangup(self):
        server = make_server()
        try:
            wire = WireConnection("127.0.0.1", server.port)
            with pytest.raises(ProtocolError):
                wire.call("FROBNICATE", {})
            assert wire.call("PING", {})["pong"]  # connection still usable
            wire.close()
        finally:
            server.shutdown()

    def test_missing_field_is_an_error_response(self):
        server = make_server()
        try:
            wire = WireConnection("127.0.0.1", server.port)
            wire.call("BEGIN", {})
            with pytest.raises(ProtocolError):
                wire.call("READ", {"table": "Saving"})  # no key
            wire.call("ROLLBACK", {})
            wire.close()
        finally:
            server.shutdown()
