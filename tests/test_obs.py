"""The observability layer: metrics instruments, trace events, engine wiring."""

from __future__ import annotations

import math
import threading

import pytest

from repro.engine import EngineConfig
from repro.obs import (
    EVENT_KINDS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    Observability,
    TraceEvent,
    TraceRecorder,
)
from repro.sim.runner import SimulationConfig, run_once
from tests.conftest import make_bank_db


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestCounterAndGauge:
    def test_counter_accumulates(self) -> None:
        registry = MetricsRegistry()
        c = registry.counter("hits_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self) -> None:
        c = MetricsRegistry().counter("hits_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self) -> None:
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.dec(2)
        g.inc(0.5)
        assert g.value == 3.5


class TestHistogram:
    def test_count_sum_mean(self) -> None:
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(5.0)
        assert h.mean == pytest.approx(5.0 / 3.0)

    def test_empty_quantile_is_zero(self) -> None:
        h = MetricsRegistry().histogram("lat")
        assert h.p50 == 0.0 and h.p99 == 0.0

    def test_quantile_interpolates_within_bucket(self) -> None:
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        for _ in range(10):
            h.observe(1.5)  # all mass in the (1, 2] bucket
        # Any quantile lands inside that bucket's bounds.
        assert 1.0 <= h.p50 <= 2.0
        assert 1.0 <= h.p99 <= 2.0

    def test_overflow_clamps_to_last_finite_bound(self) -> None:
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        h.observe(100.0)  # +Inf bucket
        assert h.p99 == 2.0
        assert math.isfinite(h.quantile(1.0))

    def test_cumulative_bucket_counts_end_at_inf(self) -> None:
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            h.observe(v)
        buckets = h.bucket_counts()
        assert buckets[-1] == (float("inf"), 3)
        counts = [c for _bound, c in buckets]
        assert counts == sorted(counts)  # cumulative: monotone

    def test_rejects_unsorted_buckets(self) -> None:
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(2.0, 1.0))

    def test_default_buckets_span_latency_range(self) -> None:
        assert LATENCY_BUCKETS[0] <= 0.0001 and LATENCY_BUCKETS[-1] >= 5.0

    def test_thread_safe_observe(self) -> None:
        h = MetricsRegistry().histogram("lat", buckets=(1.0,))

        def hammer() -> None:
            for _ in range(1000):
                h.observe(0.5)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 4000


class TestRegistry:
    def test_get_or_create_is_idempotent(self) -> None:
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_labels_make_distinct_series(self) -> None:
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"program": "Balance"})
        b = registry.counter("x_total", labels={"program": "WriteCheck"})
        assert a is not b
        a.inc()
        assert b.value == 0

    def test_kind_conflict_is_an_error(self) -> None:
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")
        with pytest.raises(ValueError):
            registry.histogram("thing", labels={"l": "1"})

    def test_json_exposition_shape(self) -> None:
        registry = MetricsRegistry()
        registry.counter("c_total", help="a counter").inc(2)
        h = registry.histogram("h_seconds", buckets=(1.0,))
        h.observe(0.5)
        data = registry.to_json()
        assert data["c_total"]["type"] == "counter"
        assert data["c_total"]["help"] == "a counter"
        assert data["c_total"]["series"][0]["value"] == 2
        series = data["h_seconds"]["series"][0]
        assert series["count"] == 1
        assert "+Inf" in series["buckets"]

    def test_prometheus_exposition_format(self) -> None:
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"reason": "ssi"}, help="hi").inc()
        h = registry.histogram("h_seconds", buckets=(1.0, 2.0))
        h.observe(1.5)
        text = registry.to_prometheus()
        assert "# HELP c_total hi" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{reason="ssi"} 1.0' in text
        assert 'h_seconds_bucket{le="1.0"} 0' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_sum 1.5" in text
        assert "h_seconds_count 1" in text


# ----------------------------------------------------------------------
# Trace events
# ----------------------------------------------------------------------
class TestTrace:
    def test_unknown_kind_rejected(self) -> None:
        with pytest.raises(ValueError):
            TraceEvent(at=0.0, kind="mystery", txid=1)

    def test_json_round_trip_restores_row_tuple(self) -> None:
        event = TraceEvent(
            at=1.5, kind="read", txid=7, label="Balance",
            detail={"row": ("Checking", 3), "version_ts": 4},
        )
        import json

        restored = TraceEvent.from_json(json.loads(json.dumps(event.to_json())))
        assert restored.detail["row"] == ("Checking", 3)
        assert restored.kind == "read" and restored.txid == 7

    def test_jsonl_round_trip(self, tmp_path) -> None:
        recorder = TraceRecorder()
        recorder.emit("begin", 1, "Balance", at=0.0, snapshot_ts=0)
        recorder.emit("read", 1, "Balance", at=0.1,
                      row=("Checking", 1), version_ts=0)
        recorder.emit("commit", 1, "Balance", at=0.2, commit_ts=1)
        path = tmp_path / "trace.jsonl"
        assert recorder.dump_jsonl(path) == 3
        reloaded = TraceRecorder.load_jsonl(path)
        assert [e.kind for e in reloaded.events] == ["begin", "read", "commit"]
        assert reloaded.events[1].detail["row"] == ("Checking", 1)

    def test_write_skew_trace_is_not_serializable(self) -> None:
        """A hand-built SI write-skew history fails the MVSG bridge."""
        recorder = TraceRecorder()
        # T1 and T2 share a snapshot, each reads both rows, each writes one.
        for txid in (1, 2):
            recorder.emit("begin", txid, f"T{txid}", at=0.0, snapshot_ts=0)
            for key in ("x", "y"):
                recorder.emit("read", txid, f"T{txid}", at=0.1,
                              row=("T", key), version_ts=0)
        recorder.emit("write", 1, "T1", at=0.2, row=("T", "x"))
        recorder.emit("write", 2, "T2", at=0.2, row=("T", "y"))
        recorder.emit("commit", 1, "T1", at=0.3, commit_ts=1)
        recorder.emit("commit", 2, "T2", at=0.4, commit_ts=2)
        report = recorder.check_serializability()
        assert not report.serializable

    def test_serial_trace_is_serializable(self) -> None:
        recorder = TraceRecorder()
        recorder.emit("begin", 1, "T1", at=0.0, snapshot_ts=0)
        recorder.emit("write", 1, "T1", at=0.1, row=("T", "x"))
        recorder.emit("commit", 1, "T1", at=0.2, commit_ts=1)
        recorder.emit("begin", 2, "T2", at=0.3, snapshot_ts=1)
        recorder.emit("read", 2, "T2", at=0.4, row=("T", "x"), version_ts=1)
        recorder.emit("commit", 2, "T2", at=0.5, commit_ts=2)
        report = recorder.check_serializability()
        assert report.serializable and report.committed_count == 2

    def test_own_write_reads_excluded_from_footprint(self) -> None:
        recorder = TraceRecorder()
        recorder.emit("begin", 1, "T1", at=0.0, snapshot_ts=0)
        recorder.emit("write", 1, "T1", at=0.1, row=("T", "x"))
        recorder.emit("read", 1, "T1", at=0.2, row=("T", "x"), version_ts=-1)
        recorder.emit("commit", 1, "T1", at=0.3, commit_ts=1)
        (txn,) = recorder.committed_transactions()
        assert txn.reads == ()
        assert txn.writes == (("T", "x"),)

    def test_event_kinds_cover_engine_hooks(self) -> None:
        assert {"begin", "read", "write", "commit", "abort",
                "lock-wait-start", "lock-wait-end",
                "wal-stage", "wal-flush"} == set(EVENT_KINDS)


# ----------------------------------------------------------------------
# Engine wiring
# ----------------------------------------------------------------------
class TestEngineWiring:
    def test_lifecycle_events_and_metrics(self) -> None:
        db = make_bank_db()
        obs = Observability(trace=TraceRecorder())
        db.install_observability(obs)
        txn = db.begin("demo")
        db.read(txn, "Checking", 1)
        db.write(txn, "Checking", 1, {"CustomerId": 1, "Balance": 60.0})
        db.commit(txn)
        kinds = [e.kind for e in obs.trace.events]
        assert kinds == [
            "begin", "read", "write", "wal-stage", "wal-flush", "commit"
        ]
        m = obs.metrics
        assert m.counter("repro_txn_begins_total").value == 1
        assert m.counter("repro_txn_commits_total").value == 1
        assert m.counter("repro_engine_reads_total").value == 1
        assert m.counter("repro_engine_writes_total").value == 1
        assert m.counter("repro_wal_records_total").value == 1
        assert m.histogram("repro_commit_path_seconds").count == 1
        assert m.histogram("repro_wal_batch_size").count == 1
        assert m.histogram("repro_wal_batch_size").mean == 1.0

    def test_abort_reason_tag(self) -> None:
        db = make_bank_db()
        obs = Observability(trace=TraceRecorder())
        db.install_observability(obs)
        txn = db.begin("demo")
        db.abort(txn)
        (abort,) = obs.trace.events_of("abort")
        assert abort.detail["reason"] == "user"
        counter = obs.metrics.counter(
            "repro_txn_aborts_total", labels={"reason": "user"}
        )
        assert counter.value == 1

    def test_serialization_abort_reason(self) -> None:
        db = make_bank_db()
        obs = Observability(trace=TraceRecorder())
        db.install_observability(obs)
        t1 = db.begin("T1")
        t2 = db.begin("T2")
        db.write(t1, "Checking", 1, {"CustomerId": 1, "Balance": 1.0})
        db.commit(t1)
        from repro.errors import SerializationFailure

        with pytest.raises(SerializationFailure):
            db.write(t2, "Checking", 1, {"CustomerId": 1, "Balance": 2.0})
        (abort,) = obs.trace.events_of("abort")
        assert abort.detail["reason"] == "serialization"

    def test_lock_wait_events_under_s2pl(self) -> None:
        db = make_bank_db(EngineConfig.s2pl())
        obs = Observability(trace=TraceRecorder())
        db.install_observability(obs)
        from repro.engine.session import Session

        holder = Session(db)
        holder.begin("holder")
        holder.update("Checking", 1, {"Balance": 1.0})
        released = threading.Event()

        def blocked_writer() -> None:
            session = Session(db)
            session.begin("blocked")
            session.update("Checking", 1, {"Balance": 2.0})
            session.commit()
            released.set()

        thread = threading.Thread(target=blocked_writer, daemon=True)
        thread.start()
        # Wait until the second writer is provably parked on the row lock.
        deadline = threading.Event()
        for _ in range(200):
            if obs.trace.events_of("lock-wait-start"):
                break
            deadline.wait(0.01)
        assert obs.trace.events_of("lock-wait-start")
        holder.commit()
        thread.join(timeout=10.0)
        assert released.is_set()
        (end,) = obs.trace.events_of("lock-wait-end")
        assert end.detail["timed_out"] is False
        assert obs.metrics.histogram("repro_lock_wait_seconds").count == 1
        assert obs.metrics.counter("repro_lock_waits_total").value == 1

    def test_vacuum_reclaims_counted(self) -> None:
        db = make_bank_db()
        obs = Observability()
        db.install_observability(obs)
        for balance in (1.0, 2.0, 3.0):
            txn = db.begin("writer")
            db.write(txn, "Checking", 1, {"CustomerId": 1, "Balance": balance})
            db.commit(txn)
        pruned = db.vacuum()
        assert pruned > 0
        assert obs.metrics.counter("repro_vacuum_reclaimed_total").value == pruned

    def test_version_chain_gauges(self) -> None:
        db = make_bank_db()
        obs = Observability()
        db.install_observability(obs)
        for balance in (1.0, 2.0):
            txn = db.begin("writer")
            db.write(txn, "Checking", 1, {"CustomerId": 1, "Balance": balance})
            db.commit(txn)
        db.observe_version_stats()
        assert obs.metrics.gauge("repro_version_chain_max_length").value >= 3
        assert obs.metrics.gauge("repro_version_chain_mean_length").value >= 1

    def test_no_observability_means_no_obs_attribute_cost(self) -> None:
        db = make_bank_db()
        assert db.obs is None
        txn = db.begin("demo")
        db.read(txn, "Checking", 1)
        db.commit(txn)  # nothing raised, nothing recorded anywhere


# ----------------------------------------------------------------------
# Simulator wiring
# ----------------------------------------------------------------------
class TestSimulatorWiring:
    def test_run_once_populates_registry_in_sim_time(self) -> None:
        obs = Observability(trace=TraceRecorder())
        config = SimulationConfig(
            mpl=4, customers=60, hotspot=6, ramp_up=0.1, measure=0.4
        )
        stats = run_once(config, obs=obs)
        assert stats.total_commits > 0
        m = obs.metrics
        assert m.counter("repro_txn_commits_total").value > 0
        rt = m.histogram("repro_response_time_seconds")
        assert rt.count > 0
        # Simulated clock: every response time fits inside the run window.
        assert rt.p99 <= config.ramp_up + config.measure
        commit_events = obs.trace.events_of("commit")
        assert commit_events
        assert all(
            e.at <= config.ramp_up + config.measure + 1e-9
            for e in commit_events
        )

    def test_seed_figures_unchanged_by_instrumentation(self) -> None:
        """The tentpole's overhead contract, at the single-run level: the
        same configuration yields identical committed-transaction counters
        with and without an Observability installed."""
        config = SimulationConfig(
            mpl=4, customers=60, hotspot=6, ramp_up=0.1, measure=0.4
        )
        plain = run_once(config)
        instrumented = run_once(config, obs=Observability(trace=TraceRecorder()))
        assert plain.commits == instrumented.commits
        assert plain.aborts == instrumented.aborts
        assert plain.response_time_sum == instrumented.response_time_sum
