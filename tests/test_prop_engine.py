"""Property-based tests: engine correctness against a reference model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_history, record_database
from repro.engine import (
    Column,
    Database,
    EngineConfig,
    Session,
    TableSchema,
    WaitOn,
)
from repro.errors import SerializationFailure

KEYS = (1, 2, 3)


def fresh_db(config: EngineConfig | None = None) -> Database:
    schema = TableSchema(
        "T", (Column("K", "int"), Column("V", "int")), primary_key="K"
    )
    db = Database([schema], config)
    for key in KEYS:
        db.load_row("T", {"K": key, "V": 0})
    return db


# One transaction = a list of (op, key, amount) steps.
steps = st.lists(
    st.tuples(
        st.sampled_from(["read", "add"]),
        st.sampled_from(KEYS),
        st.integers(min_value=-5, max_value=5),
    ),
    min_size=1,
    max_size=5,
)
workloads = st.lists(
    st.tuples(steps, st.booleans()),  # (steps, commit?)
    min_size=1,
    max_size=8,
)


@given(workloads)
@settings(max_examples=150, deadline=None)
def test_sequential_execution_matches_dict_model(workload):
    """Transactions run one at a time behave exactly like a dict."""
    db = fresh_db()
    model = {key: 0 for key in KEYS}
    for txn_steps, commit in workload:
        session = Session(db)
        session.begin()
        shadow = dict(model)
        for op, key, amount in txn_steps:
            if op == "read":
                assert session.select("T", key)["V"] == shadow[key]
            else:
                session.update(
                    "T", key, lambda row, a=amount: {"V": row["V"] + a}
                )
                shadow[key] += amount
        if commit:
            session.commit()
            model = shadow
        else:
            session.rollback()
    check = Session(db)
    check.begin()
    for key in KEYS:
        assert check.select("T", key)["V"] == model[key]


@given(workloads)
@settings(max_examples=100, deadline=None)
def test_sequential_histories_are_serializable(workload):
    db = fresh_db()
    recorder = record_database(db)
    for txn_steps, commit in workload:
        session = Session(db)
        session.begin()
        for op, key, amount in txn_steps:
            if op == "read":
                session.select("T", key)
            else:
                session.update(
                    "T", key, lambda row, a=amount: {"V": row["V"] + a}
                )
        if commit:
            session.commit()
        else:
            session.rollback()
    report = check_history(list(recorder.committed))
    assert report.serializable
    if report.serial_order:
        # Commit order is always an equivalent serial order when
        # transactions ran one at a time.
        assert list(report.serial_order) == sorted(
            report.serial_order,
            key=lambda txid: next(
                t.commit_ts
                for t in recorder.committed
                if t.txid == txid
            ),
        )


interleavings = st.lists(st.integers(min_value=0, max_value=1), max_size=14)


def run_two_concurrent(db: Database, schedule, steps_a, steps_b):
    """Step two transactions through an arbitrary interleaving; blocked or
    failed transactions roll back.  Returns committed labels."""
    sessions = [Session(db), Session(db)]
    scripts = [list(steps_a) + ["commit"], list(steps_b) + ["commit"]]
    positions = [0, 0]
    alive = [True, True]
    sessions[0].begin("A")
    sessions[1].begin("B")
    order = list(schedule) + [0] * len(scripts[0]) + [1] * len(scripts[1])
    committed: list[str] = []
    for turn in order:
        if not alive[turn] or positions[turn] >= len(scripts[turn]):
            continue
        step = scripts[turn][positions[turn]]
        session = sessions[turn]
        try:
            if step == "commit":
                session.commit()
                committed.append("AB"[turn])
                positions[turn] += 1
            else:
                op, key, amount = step
                if op == "read":
                    session.select("T", key)
                    positions[turn] += 1
                else:
                    current = session.select("T", key)["V"]
                    result = session.db.write(
                        session.transaction,
                        "T",
                        key,
                        {"K": key, "V": current + amount},
                    )
                    if isinstance(result, WaitOn):
                        # Blocked: skip the turn (retried later or never).
                        continue
                    positions[turn] += 1
        except SerializationFailure:
            alive[turn] = False
    for session, is_alive in zip(sessions, alive):
        if is_alive and session.txn is not None and session.txn.is_active:
            session.rollback()
    return committed


@given(interleavings, steps, steps)
@settings(max_examples=150, deadline=None)
def test_no_lost_updates_under_any_interleaving(schedule, steps_a, steps_b):
    """Whatever interleaves, committed increments are all reflected."""
    db = fresh_db()
    recorder = record_database(db)
    run_two_concurrent(db, schedule, steps_a, steps_b)
    # Replay the committed transactions' increments serially.
    expected = {key: 0 for key in KEYS}
    for record in recorder.committed:
        label_steps = steps_a if record.label == "A" else steps_b
        for op, key, amount in label_steps:
            if op == "add":
                expected[key] += amount
    check = Session(db)
    check.begin()
    for key in KEYS:
        assert check.select("T", key)["V"] == expected[key]


@given(interleavings, steps, steps)
@settings(max_examples=100, deadline=None)
def test_ssi_engine_histories_always_serializable(schedule, steps_a, steps_b):
    from repro.errors import SsiAbort

    db = fresh_db(EngineConfig.ssi())
    recorder = record_database(db)
    try:
        run_two_concurrent(db, schedule, steps_a, steps_b)
    except SsiAbort:
        pass
    report = check_history(list(recorder.committed))
    assert report.serializable, report.describe()


@given(interleavings, steps, steps)
@settings(max_examples=100, deadline=None)
def test_fcw_engine_prevents_lost_updates_too(schedule, steps_a, steps_b):
    db = fresh_db(EngineConfig.first_committer_wins())
    recorder = record_database(db)
    run_two_concurrent(db, schedule, steps_a, steps_b)
    expected = {key: 0 for key in KEYS}
    for record in recorder.committed:
        label_steps = steps_a if record.label == "A" else steps_b
        for op, key, amount in label_steps:
            if op == "add":
                expected[key] += amount
    check = Session(db)
    check.begin()
    for key in KEYS:
        assert check.select("T", key)["V"] == expected[key]
