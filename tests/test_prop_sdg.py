"""Property-based tests: SDG analysis and strategy-transform invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ProgramSet,
    ProgramSpec,
    build_sdg,
    materialize_all,
    promote_all,
    read,
    write,
)

TABLES = ("A", "B", "C")


@st.composite
def program_sets(draw) -> ProgramSet:
    """Random single-parameter program mixes over three tables."""
    count = draw(st.integers(min_value=1, max_value=4))
    programs = []
    for index in range(count):
        accesses = []
        for table in TABLES:
            mode = draw(
                st.sampled_from(["none", "read", "write", "read-write"])
            )
            if mode in ("read", "read-write"):
                accesses.append(read(table, "x", "v"))
            if mode in ("write", "read-write"):
                accesses.append(write(table, "x", "v"))
        if not accesses:
            accesses.append(read("A", "x", "v"))
        programs.append(ProgramSpec(f"P{index}", ("x",), tuple(accesses)))
    return ProgramSet(programs)


@given(program_sets())
@settings(max_examples=150, deadline=None)
def test_edge_existence_is_symmetric(mix):
    """An rw conflict seen from the other side is a wr conflict: the edge
    relation (ignoring labels) is symmetric."""
    sdg = build_sdg(mix)
    for source in sdg.nodes:
        for target in sdg.nodes:
            assert sdg.has_edge(source, target) == sdg.has_edge(
                target, source
            )


@given(program_sets())
@settings(max_examples=150, deadline=None)
def test_read_modify_write_closure_has_no_vulnerable_edges(mix):
    """If every program writes everything it reads, nothing is vulnerable."""
    closed = ProgramSet(
        [
            spec.with_access(
                *[
                    write(access.table, "x", "v")
                    for access in spec.reads()
                ]
            )
            for spec in mix
        ]
    )
    sdg = build_sdg(closed)
    assert sdg.vulnerable_edges() == ()
    assert sdg.is_si_serializable()


@given(program_sets())
@settings(max_examples=75, deadline=None)
def test_materialize_all_certifies_any_mix(mix):
    fixed, _mods = materialize_all(mix)
    sdg = build_sdg(fixed)
    assert sdg.vulnerable_edges() == ()
    assert sdg.is_si_serializable()


@given(program_sets())
@settings(max_examples=75, deadline=None)
def test_promote_all_certifies_any_mix(mix):
    fixed, _mods = promote_all(mix)
    sdg = build_sdg(fixed)
    assert sdg.vulnerable_edges() == ()
    assert sdg.is_si_serializable()


@given(program_sets())
@settings(max_examples=75, deadline=None)
def test_transforms_never_remove_accesses(mix):
    """Strategies only add (or strengthen) accesses — semantics preserved."""
    fixed, _mods = promote_all(mix)
    for spec in mix:
        before = set(spec.accesses)
        after = set(fixed[spec.name].accesses)
        assert before <= after


@given(program_sets())
@settings(max_examples=75, deadline=None)
def test_vulnerable_edges_are_a_subset_of_edges(mix):
    sdg = build_sdg(mix)
    for source, target in sdg.vulnerable_edges():
        assert sdg.has_edge(source, target)
        analysis = sdg.edge(source, target)
        assert "rw" in analysis.conflict_kinds


@given(program_sets())
@settings(max_examples=75, deadline=None)
def test_dangerous_structures_imply_consecutive_vulnerable_edges(mix):
    sdg = build_sdg(mix)
    for structure in sdg.dangerous_structures():
        assert sdg.is_vulnerable(structure.source, structure.pivot)
        assert sdg.is_vulnerable(structure.pivot, structure.sink)
    if sdg.is_si_serializable():
        # No pivot: no program has both an incoming and outgoing
        # vulnerable edge that close a cycle.
        assert sdg.pivots() == ()
