"""Property-based tests: simulator determinism and resource invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Simulator
from repro.sim.resources import GroupCommitLog, Resource

sleep_patterns = st.lists(
    st.lists(
        st.floats(min_value=0.001, max_value=0.5, allow_nan=False),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=4,
)


def run_pattern(pattern) -> list[tuple[int, float]]:
    sim = Simulator()
    trace: list[tuple[int, float]] = []

    def make(pid: int, sleeps):
        def proc():
            for duration in sleeps:
                sim.sleep(duration)
                trace.append((pid, sim.now))

        return proc

    for pid, sleeps in enumerate(pattern):
        sim.spawn(make(pid, sleeps), name=f"p{pid}")
    sim.run_for(10.0)
    sim.shutdown()
    return trace


@given(sleep_patterns)
@settings(max_examples=60, deadline=None)
def test_simulation_is_deterministic(pattern):
    assert run_pattern(pattern) == run_pattern(pattern)


@given(sleep_patterns)
@settings(max_examples=60, deadline=None)
def test_time_never_goes_backwards(pattern):
    trace = run_pattern(pattern)
    times = [at for _pid, at in trace]
    assert times == sorted(times)
    assert all(at >= 0 for at in times)


@given(sleep_patterns)
@settings(max_examples=60, deadline=None)
def test_every_process_finishes_its_schedule(pattern):
    trace = run_pattern(pattern)
    for pid, sleeps in enumerate(pattern):
        events = [at for p, at in trace if p == pid]
        assert len(events) == len(sleeps)
        # Each process wakes at its cumulative sleep time.
        cumulative = 0.0
        for duration, at in zip(sleeps, events):
            cumulative += duration
            assert abs(at - cumulative) < 1e-9


@given(
    st.integers(min_value=1, max_value=3),
    st.lists(
        st.floats(min_value=0.01, max_value=0.2, allow_nan=False),
        min_size=1,
        max_size=8,
    ),
)
@settings(max_examples=60, deadline=None)
def test_resource_capacity_never_exceeded(capacity, demands):
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    peak = [0]

    def user(duration: float):
        def proc():
            resource.acquire()
            peak[0] = max(peak[0], resource.in_use)
            sim.sleep(duration)
            resource.release()

        return proc

    for duration in demands:
        sim.spawn(user(duration))
    sim.run_for(60.0)
    sim.shutdown()
    assert peak[0] <= capacity
    assert resource.in_use == 0


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=60, deadline=None)
def test_group_commit_serves_every_request_exactly_once(arrivals):
    sim = Simulator()
    wal = GroupCommitLog(sim, flush_time=0.01, commit_delay=0.002)
    done = [0]

    def committer(offset: float):
        def proc():
            sim.sleep(offset)
            wal.commit_flush()
            done[0] += 1

        return proc

    for offset in arrivals:
        sim.spawn(committer(offset))
    sim.run_for(10.0)
    sim.shutdown()
    assert done[0] == len(arrivals)
    assert wal.commits_flushed == len(arrivals)
    assert 1 <= wal.flush_count <= len(arrivals)
