"""Property-based tests: mini-SQL parser round-trips and evaluation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlmini import (
    BinOp,
    ColumnRef,
    Delete,
    Insert,
    Literal,
    Param,
    Select,
    Update,
    evaluate,
    parse,
)

names = st.sampled_from(["Balance", "CustomerId", "Value", "col_1", "X"])
params = st.sampled_from(["x", "V", "N2", "amount"])
numbers = st.one_of(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False).map(
        lambda f: round(f, 3)
    ),
)
strings = st.text(
    alphabet="abcXYZ'! _", min_size=0, max_size=8
)


@st.composite
def expressions(draw, depth: int = 0):
    if depth >= 3 or draw(st.booleans()):
        leaf = draw(st.sampled_from(["number", "string", "param", "column"]))
        if leaf == "number":
            return Literal(draw(numbers))
        if leaf == "string":
            return Literal(draw(strings))
        if leaf == "param":
            return Param(draw(params))
        return ColumnRef(draw(names))
    op = draw(st.sampled_from(["+", "-", "*", "/"]))
    return BinOp(
        op, draw(expressions(depth + 1)), draw(expressions(depth + 1))
    )


@st.composite
def comparisons(draw):
    op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    left = draw(expressions())
    right = draw(expressions())
    node = BinOp(op, left, right)
    if draw(st.booleans()):
        node = BinOp(
            draw(st.sampled_from(["AND", "OR"])), node, draw(comparisons())
        )
    return node


@st.composite
def statements(draw):
    kind = draw(st.sampled_from(["select", "update", "insert", "delete"]))
    table = draw(names)
    where = draw(st.one_of(st.none(), comparisons()))
    if kind == "select":
        columns = tuple(draw(st.lists(names, min_size=1, max_size=3,
                                      unique=True)))
        into = ()
        if draw(st.booleans()):
            into = tuple(f"v{i}" for i in range(len(columns)))
        return Select(table, columns, where, into, draw(st.booleans()))
    if kind == "update":
        assignments = tuple(
            (draw(names), draw(expressions()))
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        )
        return Update(table, assignments, where)
    if kind == "insert":
        columns = tuple(
            draw(st.lists(names, min_size=1, max_size=3, unique=True))
        )
        values = tuple(draw(expressions()) for _ in columns)
        return Insert(table, columns, values)
    return Delete(table, where)


@given(statements())
@settings(max_examples=300, deadline=None)
def test_statement_str_round_trips_through_the_parser(statement):
    assert parse(str(statement)) == statement


@given(expressions())
@settings(max_examples=300, deadline=None)
def test_expression_str_round_trips(expression):
    wrapped = parse(f"SELECT a FROM t WHERE x = ({expression})")
    assert wrapped.where.right == expression


@given(
    st.integers(min_value=-100, max_value=100),
    st.integers(min_value=-100, max_value=100),
    st.integers(min_value=1, max_value=100),
)
@settings(max_examples=200)
def test_arithmetic_evaluation_matches_python(a, b, c):
    expr = parse(f"SELECT x FROM t WHERE x = :a + :b * :c - (:a / :c)").where.right
    value = evaluate(expr, None, {"a": a, "b": b, "c": c})
    assert value == a + b * c - (a / c)


@given(comparisons())
@settings(max_examples=200, deadline=None)
def test_comparison_evaluation_is_boolean_when_types_align(comparison):
    bindings = {name: 1 for name in ["x", "V", "N2", "amount"]}
    row = {name: 2 for name in ["Balance", "CustomerId", "Value", "col_1", "X"]}
    try:
        result = evaluate(comparison, row, bindings)
    except (TypeError, ZeroDivisionError):
        # Mixed string/number comparisons can be ill-typed and random
        # arithmetic can divide by zero; the executor surfaces Python's
        # errors for both, which is the intended behaviour.
        return
    assert isinstance(result, bool)
