"""Property-based tests: version-chain invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.versions import Version, VersionChain, freeze_row


@st.composite
def chains(draw) -> VersionChain:
    """A chain with strictly increasing commit timestamps, some tombstones."""
    count = draw(st.integers(min_value=0, max_value=12))
    gaps = draw(
        st.lists(
            st.integers(min_value=1, max_value=9),
            min_size=count,
            max_size=count,
        )
    )
    chain = VersionChain()
    ts = 0
    for index, gap in enumerate(gaps):
        ts += gap
        tombstone = draw(st.booleans())
        value = None if tombstone else freeze_row({"v": index})
        chain.append_committed(Version(ts, txid=index + 1, value=value))
    return chain


@given(chains(), st.integers(min_value=0, max_value=150))
@settings(max_examples=200)
def test_visible_version_is_newest_at_or_before_snapshot(chain, snapshot):
    version = chain.visible(snapshot)
    committed = chain.committed
    eligible = [v for v in committed if v.commit_ts <= snapshot]
    if not eligible:
        assert version is None
    else:
        assert version is eligible[-1]


@given(chains())
@settings(max_examples=200)
def test_visibility_is_monotone_in_snapshot(chain):
    """A later snapshot never sees an older version."""
    previous_ts = -1
    for snapshot in range(0, 130, 7):
        version = chain.visible(snapshot)
        current_ts = version.commit_ts if version else -1
        assert current_ts >= previous_ts
        previous_ts = current_ts


@given(chains())
@settings(max_examples=200)
def test_successor_links_walk_the_whole_chain(chain):
    walked = []
    ts = 0
    while True:
        nxt = chain.successor_of(ts)
        if nxt is None:
            break
        walked.append(nxt.commit_ts)
        ts = nxt.commit_ts
    assert walked == [v.commit_ts for v in chain.committed]


@given(chains(), st.integers(min_value=0, max_value=150))
@settings(max_examples=200)
def test_exists_iff_visible_and_not_tombstone(chain, snapshot):
    version = chain.visible(snapshot)
    expected = version is not None and not version.is_tombstone
    assert chain.exists_at(snapshot) == expected


@given(chains())
@settings(max_examples=100)
def test_latest_commit_ts_matches_tail(chain):
    if len(chain) == 0:
        assert chain.latest_commit_ts() == 0
    else:
        assert chain.latest_commit_ts() == chain.committed[-1].commit_ts
        assert chain.version_at(chain.latest_commit_ts()) is chain.committed[-1]
