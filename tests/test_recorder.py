"""Recorder tests: committed footprints captured from a live database."""

from __future__ import annotations

from repro.analysis import SerializabilityChecker, record_database
from repro.engine import Database, Session


class TestRecorder:
    def test_commit_recorded_with_footprint(self, db: Database):
        recorder = record_database(db)
        session = Session(db)
        session.begin("move")
        session.select("Saving", 1)
        session.update("Checking", 1, {"Balance": 0.0})
        session.commit()
        (record,) = recorder.committed
        assert record.label == "move"
        assert record.writes == (("Checking", 1),)
        read_items = [row for row, _ts in record.reads]
        assert ("Saving", 1) in read_items
        assert record.commit_ts is not None

    def test_own_write_reads_excluded(self, db: Database):
        recorder = record_database(db)
        session = Session(db)
        session.begin()
        session.update("Checking", 1, {"Balance": 1.0})
        session.select("Checking", 1)  # own write
        session.commit()
        (record,) = recorder.committed
        # The update's internal read of the pre-image IS recorded (it read
        # the snapshot version); the later own-write read adds nothing.
        versions = dict(record.reads)
        assert versions[("Checking", 1)] == 0

    def test_aborts_counted_not_recorded(self, db: Database):
        recorder = record_database(db)
        session = Session(db)
        session.begin()
        session.update("Checking", 1, {"Balance": 1.0})
        session.rollback()
        assert len(recorder) == 0
        assert recorder.aborted_count == 1

    def test_clear(self, db: Database):
        recorder = record_database(db)
        session = Session(db)
        session.begin()
        session.select("Saving", 1)
        session.commit()
        recorder.clear()
        assert len(recorder) == 0

    def test_read_version_lookup(self, db: Database):
        recorder = record_database(db)
        writer = Session(db)
        writer.begin()
        writer.update("Saving", 1, {"Balance": 7.0})
        writer.commit()
        reader = Session(db)
        reader.begin()
        reader.select("Saving", 1)
        reader.commit()
        write_record, read_record = recorder.committed
        assert read_record.read_version(("Saving", 1)) == write_record.commit_ts
        assert read_record.read_version(("Saving", 99)) is None
        assert read_record.is_read_only
        assert not write_record.is_read_only

    def test_checker_facade_on_live_db(self, db: Database):
        checker = SerializabilityChecker(db)
        for cid in (1, 2, 3):
            session = Session(db)
            session.begin("touch")
            session.update("Saving", cid, lambda r: {"Balance": r["Balance"] + 1})
            session.commit()
        report = checker.report()
        assert report.serializable
        assert report.committed_count == 3
        assert report.serial_order is not None and len(report.serial_order) == 3
        assert "serializable" in report.describe()
