"""Crash recovery: the durability invariant.

The contract under test (see :mod:`repro.engine.recovery`):

* flushed-committed effects survive recovery exactly — row after-images
  and deletion tombstones alike, with their original commit timestamps;
* unflushed and uncommitted effects vanish without a trace;
* bootstrap rows (the checkpoint image) are always restored;
* the logical clock resumes strictly after the replayed horizon;
* SmallBank money conservation holds across crash/recover cycles.

The property test drives a random committed history and recovers from
*every* WAL prefix, comparing against an independently maintained shadow
state.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database, Session, recover_database, replay_records
from repro.engine.wal import WalRecord
from repro.errors import DatabaseCrashed, RecoveryError
from repro.faults import FaultPlan, FaultSpec
from repro.smallbank import (
    PopulationConfig,
    build_database,
    customer_name,
    get_strategy,
    total_money,
)

from tests.conftest import make_bank_db

#: A read timestamp beyond any commit in these tests.
LATE = 10**9


def visible_state(db: Database) -> dict[tuple[str, object], object]:
    """``{(table, key): balance}`` for every visible Saving/Checking row."""
    state: dict[tuple[str, object], object] = {}
    for name in ("Saving", "Checking"):
        table = db.catalog.table(name)
        for key, row in table.scan_visible(LATE):
            state[(name, key)] = row["Balance"]
    return state


# ----------------------------------------------------------------------
# Deterministic durability tests
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_flushed_commits_survive(self, db: Database) -> None:
        s = Session(db)
        s.begin("t1")
        s.update("Saving", 1, {"Balance": 250.0})
        s.delete("Checking", 2)
        s.commit()

        db.crash()
        assert db.is_crashed
        recovered = db.recover()

        assert not recovered.is_crashed
        state = visible_state(recovered)
        assert state[("Saving", 1)] == 250.0
        assert ("Checking", 2) not in state  # tombstone replayed
        assert state[("Checking", 1)] == 50.0  # bootstrap untouched

    def test_uncommitted_transaction_vanishes(self, db: Database) -> None:
        s = Session(db)
        s.begin("in-flight")
        s.update("Saving", 1, {"Balance": 999.0})
        db.crash()

        recovered = db.recover()
        assert visible_state(recovered)[("Saving", 1)] == 100.0
        assert len(recovered.wal) == 0

    def test_crashed_database_refuses_work(self, db: Database) -> None:
        s = Session(db)
        s.begin("t1")
        db.crash()
        with pytest.raises(DatabaseCrashed):
            s.update("Saving", 1, {"Balance": 1.0})
        with pytest.raises(DatabaseCrashed):
            Session(db).begin("t2")

    def test_crash_mid_commit_is_not_durable(self, db: Database) -> None:
        """The fault fires between WAL append and flush: the client never
        saw the commit succeed, so recovery must drop it."""
        db.install_faults(
            FaultPlan([FaultSpec("crash-mid-commit", start_after=1)])
        )

        s1 = Session(db)
        s1.begin("survives")
        s1.update("Saving", 1, {"Balance": 111.0})
        s1.commit()  # first opportunity skipped (start_after=1)

        s2 = Session(db)
        s2.begin("lost")
        s2.update("Saving", 2, {"Balance": 222.0})
        with pytest.raises(DatabaseCrashed):
            s2.commit()

        assert db.is_crashed
        assert db.wal.unflushed_count == 0  # crash discarded the tail
        assert len(db.wal.durable_records) == 1

        recovered = db.recover()
        state = visible_state(recovered)
        assert state[("Saving", 1)] == 111.0
        assert state[("Saving", 2)] == 100.0

    def test_clock_resumes_after_replayed_horizon(self, db: Database) -> None:
        s = Session(db)
        s.begin("t1")
        s.update("Saving", 1, {"Balance": 1.0})
        s.commit()
        db.crash()

        recovered = db.recover()
        old_ts = recovered.wal.durable_records[-1].commit_ts
        s2 = Session(recovered)
        s2.begin("t2")
        s2.update("Saving", 1, {"Balance": 2.0})
        s2.commit()
        new_record = recovered.wal.durable_records[-1]
        assert new_record.commit_ts > old_ts

    def test_recovery_is_idempotent(self, db: Database) -> None:
        s = Session(db)
        s.begin("t1")
        s.update("Checking", 3, {"Balance": 77.0})
        s.commit()
        db.crash()

        once = db.recover()
        twice = once.recover()
        assert visible_state(once) == visible_state(twice)
        assert once.wal.durable_records == twice.wal.durable_records

    def test_replay_rejects_unordered_prefix(self, db: Database) -> None:
        records = [
            WalRecord(5, 1, "a", (("Saving", 1),), ((("Saving", 1), {"CustomerId": 1, "Balance": 1.0}),)),
            WalRecord(3, 2, "b", (("Saving", 2),), ((("Saving", 2), {"CustomerId": 2, "Balance": 2.0}),)),
        ]
        with pytest.raises(RecoveryError):
            recover_database(db, records)

    def test_replay_rejects_missing_redo(self, db: Database) -> None:
        bare = WalRecord(5, 1, "a", (("Saving", 1),))
        with pytest.raises(RecoveryError):
            recover_database(db, [bare])

    def test_replay_records_requires_fresh_database(self, db: Database) -> None:
        """replay_records is the low-level half: applied to a bootstrapped
        copy it reproduces the durable prefix."""
        s = Session(db)
        s.begin("t1")
        s.update("Saving", 1, {"Balance": 42.0})
        s.commit()

        fresh = make_bank_db(db.config)
        replay_records(fresh, db.wal.durable_records)
        assert visible_state(fresh) == visible_state(db)


# ----------------------------------------------------------------------
# SmallBank money conservation across crash/recover cycles
# ----------------------------------------------------------------------
def test_smallbank_money_survives_crash_cycles() -> None:
    strategy = get_strategy("base-si")
    txns = strategy.transactions()
    db = build_database(None, PopulationConfig(customers=10, seed=7))
    expected = total_money(db)

    # Crash mid-commit on the 3rd writing commit.
    db.install_faults(
        FaultPlan([FaultSpec("crash-mid-commit", start_after=2, max_fires=1)])
    )
    deposits = 0.0
    for i in range(1, 9):
        name = customer_name((i % 10) + 1)
        try:
            session = Session(db)
            txns.run(session, "DepositChecking", {"N": name, "V": 10.0})
            deposits += 10.0
        except DatabaseCrashed:
            # The in-flight deposit was never acknowledged: not durable.
            db = db.recover()
            db.install_faults(None)
    assert total_money(db) == pytest.approx(expected + deposits, abs=1e-6)


# ----------------------------------------------------------------------
# Property: recovery from EVERY WAL prefix matches the shadow state
# ----------------------------------------------------------------------
TABLES = ("Saving", "Checking")

op_strategy = st.tuples(
    st.sampled_from(("set", "del")),
    st.sampled_from(TABLES),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=100),
)

txn_strategy = st.lists(op_strategy, min_size=1, max_size=3)


@settings(max_examples=25, deadline=None)
@given(history=st.lists(txn_strategy, min_size=1, max_size=10))
def test_recovery_from_every_prefix_matches_shadow(history) -> None:
    db = make_bank_db(customers=3)
    shadow: dict[tuple[str, object], object] = visible_state(db)
    snapshots = [dict(shadow)]

    for ops in history:
        session = Session(db)
        session.begin("txn")
        for kind, table, key, value in ops:
            if kind == "del" and (table, key) not in shadow:
                kind = "set"  # deleting an absent row: write instead
            if kind == "set":
                balance = float(value)
                if (table, key) in shadow:
                    session.update(table, key, {"Balance": balance})
                else:
                    session.insert(
                        table, {"CustomerId": key, "Balance": balance}
                    )
                shadow[(table, key)] = balance
            else:
                session.delete(table, key)
                del shadow[(table, key)]
        session.commit()
        snapshots.append(dict(shadow))

    records = db.wal.durable_records
    assert len(records) == len(snapshots) - 1

    for k in range(len(records) + 1):
        recovered = recover_database(db, records[:k])
        assert visible_state(recovered) == snapshots[k], (
            f"recovery from prefix {k}/{len(records)} diverged"
        )
        assert recovered.wal.durable_records == records[:k]
