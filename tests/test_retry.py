"""The unified retry layer: policy semantics and driver integration."""

from __future__ import annotations

import random
import time

import pytest

from repro.errors import (
    ApplicationRollback,
    DeadlockError,
    FaultInjected,
    IntegrityError,
    LockTimeout,
    SerializationFailure,
    SsiAbort,
)
from repro.faults import FaultPlan, FaultSpec
from repro.smallbank.transactions import SmallBankTransactions
from repro.workload.driver import (
    ThreadedDriver,
    ThreadedDriverConfig,
    ThreadedDriverError,
)
from repro.smallbank import PopulationConfig, build_database
from repro.workload.retry import RetryPolicy


# ----------------------------------------------------------------------
# Policy semantics
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_paper_default_never_retries(self) -> None:
        policy = RetryPolicy.paper_default()
        assert policy.max_attempts == 1
        assert not policy.should_retry(SerializationFailure("x"), 1)

    @pytest.mark.parametrize(
        "error",
        [
            SerializationFailure("x"),
            DeadlockError("x"),
            LockTimeout("x"),
            FaultInjected("x"),
            SsiAbort("x"),
        ],
    )
    def test_concurrency_errors_are_retryable(self, error) -> None:
        assert RetryPolicy.exponential().is_retryable(error)

    @pytest.mark.parametrize(
        "error", [ApplicationRollback("x"), IntegrityError("x")]
    )
    def test_business_errors_are_not_retryable(self, error) -> None:
        assert not RetryPolicy.exponential().is_retryable(error)

    def test_non_retryable_wins_on_overlap(self) -> None:
        policy = RetryPolicy(
            max_attempts=3,
            retryable=(Exception,),
            non_retryable=(IntegrityError,),
        )
        assert policy.is_retryable(SerializationFailure("x"))
        assert not policy.is_retryable(IntegrityError("x"))

    def test_should_retry_respects_max_attempts(self) -> None:
        policy = RetryPolicy.exponential(max_attempts=3)
        err = SerializationFailure("x")
        assert policy.should_retry(err, 1)
        assert policy.should_retry(err, 2)
        assert not policy.should_retry(err, 3)

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_backoff_progression_and_cap(self) -> None:
        policy = RetryPolicy(
            max_attempts=10,
            base_backoff=0.01,
            multiplier=2.0,
            max_backoff=0.05,
            jitter=0.0,
        )
        rng = random.Random(1)
        delays = [policy.backoff(n, rng) for n in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]  # capped

    def test_zero_base_backoff_draws_nothing(self) -> None:
        """The default policy must not consume RNG state (bit-identical
        seed figures depend on it)."""
        policy = RetryPolicy.paper_default()
        rng = random.Random(1)
        before = rng.getstate()
        assert policy.backoff(1, rng) == 0.0
        assert rng.getstate() == before

    def test_jitter_bounds(self) -> None:
        policy = RetryPolicy(
            max_attempts=5, base_backoff=0.01, jitter=0.5, max_backoff=1.0
        )
        rng = random.Random(7)
        for attempt in range(1, 5):
            base = 0.01 * 2.0 ** (attempt - 1)
            for _ in range(20):
                delay = policy.backoff(attempt, rng)
                assert base <= delay <= base * 1.5


# ----------------------------------------------------------------------
# Threaded driver integration: deterministic retry accounting
# ----------------------------------------------------------------------
def smallbank_db():
    return build_database(None, PopulationConfig(customers=10, seed=1))


def run_driver(db, *, retry=None, mpl=1, duration=0.5):
    driver = ThreadedDriver(
        db,
        SmallBankTransactions(),
        ThreadedDriverConfig(
            mpl=mpl,
            customers=10,
            hotspot=3,
            duration=duration,
            join_grace=10.0,
            retry=retry,
        ),
    )
    return driver.run()


def test_driver_retries_until_fault_exhausted() -> None:
    """abort-at-commit fires 3 times; a 5-attempt policy rides them out:
    exactly one commit needs 4 attempts, everything else needs 1."""
    db = smallbank_db()
    db.install_faults(
        FaultPlan([FaultSpec("abort-at-commit", max_fires=3)])
    )
    stats = run_driver(db, retry=RetryPolicy.exponential(max_attempts=5))

    assert stats.abort_breakdown().get("fault", 0) == 3
    assert stats.total_retries == 3
    assert stats.total_giveups == 0
    assert stats.attempts_histogram[4] == 1
    assert stats.mean_attempts_per_commit() > 1.0
    assert stats.total_commits > 0


def test_driver_gives_up_when_attempts_exhausted() -> None:
    """With max_attempts=2 and 5 forced aborts: requests 1 and 2 burn two
    attempts each and give up; request 3 aborts once, then commits."""
    db = smallbank_db()
    db.install_faults(
        FaultPlan([FaultSpec("abort-at-commit", max_fires=5)])
    )
    stats = run_driver(db, retry=RetryPolicy.exponential(max_attempts=2))

    assert stats.abort_breakdown().get("fault", 0) == 5
    assert stats.total_giveups == 2
    assert stats.total_retries == 3
    assert stats.attempts_histogram[2] == 1  # request 3 committed on retry


def test_driver_default_policy_surfaces_every_abort() -> None:
    db = smallbank_db()
    db.install_faults(
        FaultPlan([FaultSpec("abort-at-commit", max_fires=2)])
    )
    stats = run_driver(db)  # paper default: no in-place retries

    assert stats.total_retries == 0
    assert stats.total_giveups == 2
    assert stats.abort_breakdown().get("fault", 0) == 2
    assert set(stats.attempts_histogram) <= {1}


# ----------------------------------------------------------------------
# Satellite fixes: session release on rollback, no silent worker death
# ----------------------------------------------------------------------
class Rollbacky(SmallBankTransactions):
    """Every request raises a business rollback mid-transaction while
    holding a row lock — the session-leak regression case."""

    def run(self, session, program, args, *, commit=True):
        session.begin(program)
        session.update("Saving", 1, {"Balance": 1.0})
        raise ApplicationRollback("declined")


def test_application_rollback_releases_the_session() -> None:
    db = smallbank_db()
    driver = ThreadedDriver(
        db,
        Rollbacky(),
        ThreadedDriverConfig(
            mpl=2, customers=10, hotspot=3, duration=0.3, join_grace=10.0
        ),
    )
    stats = driver.run()
    # Before the fix the first rollback leaked its transaction: Saving 1
    # stayed locked, both workers wedged, and active txns lingered.
    assert db.active_transactions == ()
    assert sum(stats.rollbacks.values()) > 2


class Exploding(SmallBankTransactions):
    def run(self, session, program, args, *, commit=True):
        raise RuntimeError("boom")


def test_worker_death_is_reported_not_silent() -> None:
    db = smallbank_db()
    driver = ThreadedDriver(
        db,
        Exploding(),
        ThreadedDriverConfig(
            mpl=2, customers=10, hotspot=3, duration=0.2, join_grace=10.0
        ),
    )
    with pytest.raises(ThreadedDriverError) as excinfo:
        driver.run()
    assert set(excinfo.value.failures) == {0, 1}
    assert all(
        isinstance(exc, RuntimeError) for exc in excinfo.value.failures.values()
    )
    assert "boom" in str(excinfo.value)


class Sleepy(SmallBankTransactions):
    def run(self, session, program, args, *, commit=True):
        time.sleep(2.0)
        raise ApplicationRollback("too slow")


def test_stuck_worker_is_reported() -> None:
    db = smallbank_db()
    driver = ThreadedDriver(
        db,
        Sleepy(),
        ThreadedDriverConfig(
            mpl=1, customers=10, hotspot=3, duration=0.1, join_grace=0.2
        ),
    )
    with pytest.raises(ThreadedDriverError) as excinfo:
        driver.run()
    assert excinfo.value.stuck == (0,)
    assert "still alive" in str(excinfo.value)
