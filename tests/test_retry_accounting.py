"""Retry/stats accounting fixes: exact reconciliation, backoff clamp,
parameter-generator guards and aggregate-stat caching."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.workload.stats as stats_mod
from repro.engine import EngineConfig
from repro.faults import FaultPlan, FaultSpec
from repro.smallbank import PopulationConfig, build_database, get_strategy
from repro.workload.driver import ThreadedDriver, ThreadedDriverConfig
from repro.workload.mix import HotspotConfig, ParameterGenerator
from repro.workload.retry import RetryPolicy
from repro.workload.stats import AggregateResult, RunStats, mean_and_ci


# ----------------------------------------------------------------------
# The retry-accounting invariant (the driver.run deadline fix)
# ----------------------------------------------------------------------
class TestRetryReconciliation:
    @pytest.mark.parametrize("probability", [1.0, 0.7])
    def test_total_retries_reconciles_with_attempt_histograms(
        self, probability: float
    ) -> None:
        """``total_retries`` must equal the retries implied by the attempt
        histograms even when the run deadline expires mid-retry.

        The fault plan aborts commits so aggressively that many requests
        are still inside their backoff sleep when the deadline passes —
        the exact window where the old driver recorded a retry for an
        attempt that never started.
        """
        db = build_database(
            EngineConfig.postgres(), PopulationConfig(customers=20)
        )
        db.install_faults(
            FaultPlan(
                [FaultSpec("abort-at-commit", probability=probability)],
                seed=3,
            )
        )
        driver = ThreadedDriver(
            db,
            get_strategy("base-si").transactions(),
            ThreadedDriverConfig(
                mpl=4,
                customers=20,
                hotspot=5,
                mix="readonly",  # Balance only: no business rollbacks
                duration=0.4,
                seed=5,
                retry=RetryPolicy(
                    max_attempts=5, base_backoff=0.02, max_backoff=0.05
                ),
                stats_window=(0.0, float("inf")),
            ),
        )
        stats = driver.run()
        assert stats.total_commits + stats.total_giveups > 0
        assert stats.total_giveups > 0  # the fault plan must have bitten
        assert stats.total_retries == stats.accounted_retries
        assert sum(stats.attempts_histogram.values()) == stats.total_commits
        assert (
            sum(stats.giveup_attempts_histogram.values())
            == stats.total_giveups
        )

    def test_accounted_retries_formula(self) -> None:
        stats = RunStats(window_start=0.0, window_end=10.0)
        stats.record_commit("Balance", 0.01, 1.0, attempts=3)  # 2 retries
        stats.record_commit("Balance", 0.01, 1.0, attempts=1)  # 0 retries
        stats.record_giveup("Balance", 1.0, attempts=5)  # 4 retries
        stats.record_giveup("Balance", 1.0, attempts=1)  # gave up pre-retry
        assert stats.accounted_retries == 6


# ----------------------------------------------------------------------
# Backoff clamp (RetryPolicy.backoff fix)
# ----------------------------------------------------------------------
class _FullJitterRng:
    """Deterministic rng stub pinning jitter to its supremum."""

    def random(self) -> float:
        return 0.999999


class TestBackoffClamp:
    def test_jittered_delay_cannot_exceed_max_backoff(self) -> None:
        """Regression: clamping before jitter let delays reach
        ``max_backoff * (1 + jitter)``."""
        policy = RetryPolicy(
            max_attempts=5, base_backoff=0.08, max_backoff=0.1, jitter=1.0
        )
        delay = policy.backoff(1, _FullJitterRng())
        # Unclamped: 0.08 * ~2 = ~0.16; the ceiling must win.
        assert delay == pytest.approx(0.1)

    @given(
        attempt=st.integers(min_value=1, max_value=12),
        base=st.floats(min_value=1e-4, max_value=1.0),
        multiplier=st.floats(min_value=1.0, max_value=4.0),
        cap=st.floats(min_value=1e-4, max_value=1.0),
        jitter=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=200, deadline=None)
    def test_backoff_bounded_by_max_backoff(
        self, attempt, base, multiplier, cap, jitter, seed
    ) -> None:
        policy = RetryPolicy(
            max_attempts=5,
            base_backoff=base,
            multiplier=multiplier,
            max_backoff=cap,
            jitter=jitter,
        )
        delay = policy.backoff(attempt, random.Random(seed))
        assert 0.0 <= delay <= cap

    def test_zero_jitter_does_not_draw_from_rng(self) -> None:
        policy = RetryPolicy(
            max_attempts=5, base_backoff=0.01, max_backoff=0.1, jitter=0.0
        )
        rng = random.Random(7)
        state = rng.getstate()
        policy.backoff(3, rng)
        assert rng.getstate() == state

    def test_module_docstring_describes_multiplicative_jitter(self) -> None:
        import repro.workload.retry as retry_mod

        doc = retry_mod.__doc__
        assert "multiplicative jitter" in doc
        assert "clamped" in doc


# ----------------------------------------------------------------------
# ParameterGenerator guards (pick_two_customers fix)
# ----------------------------------------------------------------------
class TestPickTwoCustomers:
    def test_single_customer_raises_instead_of_hanging(self) -> None:
        generator = ParameterGenerator(
            HotspotConfig(customers=1, hotspot=1), random.Random(0)
        )
        with pytest.raises(ValueError, match="at least 2 customers"):
            generator.pick_two_customers()

    def test_degenerate_hotspot_raises_instead_of_hanging(self) -> None:
        generator = ParameterGenerator(
            HotspotConfig(customers=5, hotspot=1, hotspot_probability=1.0),
            random.Random(0),
        )
        with pytest.raises(ValueError, match="hotspot"):
            generator.pick_two_customers()

    def test_amalgamate_args_surface_the_error(self) -> None:
        generator = ParameterGenerator(
            HotspotConfig(customers=1, hotspot=1), random.Random(0)
        )
        with pytest.raises(ValueError):
            generator.args_for("Amalgamate")

    def test_valid_configs_still_return_distinct_pairs(self) -> None:
        generator = ParameterGenerator(
            HotspotConfig(customers=5, hotspot=2, hotspot_probability=0.9),
            random.Random(0),
        )
        for _ in range(100):
            first, second = generator.pick_two_customers()
            assert first != second
            assert 1 <= first <= 5 and 1 <= second <= 5

    def test_two_customer_full_hotspot_is_fine(self) -> None:
        generator = ParameterGenerator(
            HotspotConfig(customers=2, hotspot=2, hotspot_probability=1.0),
            random.Random(0),
        )
        assert sorted(generator.pick_two_customers()) == [1, 2]


# ----------------------------------------------------------------------
# AggregateResult caching (compute-once fix)
# ----------------------------------------------------------------------
def _run_with(commits: int, response: float) -> RunStats:
    stats = RunStats(window_start=0.0, window_end=1.0)
    for _ in range(commits):
        stats.record_commit("Balance", response, 0.5)
    return stats


class TestAggregateCaching:
    def test_values_match_direct_computation(self) -> None:
        runs = [_run_with(10, 0.01), _run_with(20, 0.03)]
        agg = AggregateResult(runs)
        expected_tps, expected_ci = mean_and_ci([r.tps for r in runs])
        assert agg.tps == expected_tps
        assert agg.tps_ci == expected_ci
        assert agg.mean_response_time == mean_and_ci(
            [r.mean_response_time for r in runs]
        )[0]

    def test_each_metric_computed_once(self, monkeypatch) -> None:
        calls = {"n": 0}
        real = stats_mod.mean_and_ci

        def counting(values, confidence=0.95):
            calls["n"] += 1
            return real(values, confidence)

        monkeypatch.setattr(stats_mod, "mean_and_ci", counting)
        agg = AggregateResult([_run_with(10, 0.01), _run_with(20, 0.03)])
        for _ in range(5):
            agg.tps
            agg.tps_ci  # shares the ("tps",) cache entry
        assert calls["n"] == 1
        agg.mean_response_time
        agg.mean_response_time
        assert calls["n"] == 2
        agg.abort_rate()
        agg.abort_rate("Balance")  # distinct key
        agg.abort_rate()
        assert calls["n"] == 4
        agg.commits_of("Balance")
        agg.commits_of("Balance")
        assert calls["n"] == 5

    def test_describe_uses_cache(self, monkeypatch) -> None:
        calls = {"n": 0}
        real = stats_mod.mean_and_ci

        def counting(values, confidence=0.95):
            calls["n"] += 1
            return real(values, confidence)

        monkeypatch.setattr(stats_mod, "mean_and_ci", counting)
        agg = AggregateResult([_run_with(5, 0.02), _run_with(7, 0.02)])
        agg.describe()
        agg.describe()
        # tps (shared with tps_ci) + response time + abort rate = 3 computations.
        assert calls["n"] == 3
