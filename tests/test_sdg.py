"""Tests for SDG construction, dangerous structures and the main theorem."""

from __future__ import annotations

from repro.core import ProgramSet, ProgramSpec, build_sdg, read, write


def spec(name: str, *accesses) -> ProgramSpec:
    return ProgramSpec(name, ("x",), tuple(accesses))


def write_skew_mix() -> ProgramSet:
    """The minimal dangerous mix: two programs reading both rows, each
    writing a different one, plus nothing else."""
    return ProgramSet(
        [
            spec("P1", read("A", "x", "v"), read("B", "x", "v"),
                 write("A", "x", "v")),
            spec("P2", read("A", "x", "v"), read("B", "x", "v"),
                 write("B", "x", "v")),
        ],
        name="write-skew",
    )


def protected_mix() -> ProgramSet:
    """Every program reads an item only if it also writes it (TPC-C shape:
    update programs are read-modify-write; readers exist but are leaves)."""
    return ProgramSet(
        [
            spec("Upd1", read("A", "x", "v"), write("A", "x", "v")),
            spec("Upd2", read("B", "x", "v"), write("B", "x", "v")),
            spec("Report", read("A", "x", "v"), read("B", "x", "v")),
        ],
        name="protected",
    )


class TestEdges:
    def test_write_skew_mix_edges(self):
        sdg = build_sdg(write_skew_mix())
        assert sdg.is_vulnerable("P1", "P2")  # P1 reads B, P2 writes B
        assert sdg.is_vulnerable("P2", "P1")
        assert sdg.has_edge("P1", "P1")  # rw+ww self conflicts exist
        assert not sdg.is_vulnerable("P1", "P1")

    def test_protected_mix_edges(self):
        sdg = build_sdg(protected_mix())
        # Report has vulnerable out-edges; updaters do not.
        assert sdg.is_vulnerable("Report", "Upd1")
        assert sdg.is_vulnerable("Report", "Upd2")
        assert not sdg.is_vulnerable("Upd1", "Upd1")
        assert sdg.edge("Upd1", "Upd2") is None  # disjoint tables

    def test_missing_edge_queries(self):
        sdg = build_sdg(protected_mix())
        assert sdg.edge("Upd1", "Report") is not None  # wr edge
        assert not sdg.is_vulnerable("Upd1", "Report")
        # Read-read is no conflict: Report has no self-edge.
        assert sdg.successors("Report") == ("Upd1", "Upd2")


class TestDangerousStructures:
    def test_write_skew_mix_is_dangerous(self):
        sdg = build_sdg(write_skew_mix())
        structures = sdg.dangerous_structures()
        assert structures
        assert not sdg.is_si_serializable()
        rendered = {str(s) for s in structures}
        assert "P1 -(v)-> P2 -(v)-> P1" in rendered
        assert set(sdg.pivots()) == {"P1", "P2"}

    def test_protected_mix_is_serializable(self):
        sdg = build_sdg(protected_mix())
        assert sdg.dangerous_structures() == ()
        assert sdg.is_si_serializable()
        assert sdg.pivots() == ()

    def test_consecutive_vulnerable_edges_always_lie_on_a_cycle(self):
        """Edge existence is symmetric (an rw P->Q is a wr Q->P), so two
        vulnerable edges in a row always close a cycle via the back wr
        edges — consecutiveness is the whole condition in practice."""
        mix = ProgramSet(
            [
                spec("R", read("A", "x", "v")),
                spec("M", read("A", "x", "v"), write("A", "x", "v"),
                     read("B", "x", "v")),
                spec("W", write("B", "x", "v")),
            ],
            name="chain",
        )
        sdg = build_sdg(mix)
        assert sdg.is_vulnerable("R", "M")
        assert sdg.is_vulnerable("M", "W")
        assert sdg.has_edge("W", "M") and sdg.has_edge("M", "R")
        assert not sdg.is_si_serializable()
        assert "M" in sdg.pivots()

    def test_nonconsecutive_vulnerable_edges_are_safe(self):
        """Two vulnerable edges that do not share a middle node: safe."""
        mix = ProgramSet(
            [
                spec("R1", read("A", "x", "v")),
                spec("W1", read("A", "x", "v"), write("A", "x", "v")),
                spec("R2", read("B", "x", "v")),
                spec("W2", read("B", "x", "v"), write("B", "x", "v")),
            ],
            name="two-pairs",
        )
        sdg = build_sdg(mix)
        assert sdg.is_vulnerable("R1", "W1")
        assert sdg.is_vulnerable("R2", "W2")
        assert sdg.is_si_serializable()

    def test_vulnerable_self_loop_is_dangerous(self):
        mix = ProgramSet(
            [
                ProgramSpec(
                    "Swap",
                    ("a", "b"),
                    (read("T", "a", "v"), write("T", "b", "v")),
                )
            ],
            name="self-loop",
        )
        sdg = build_sdg(mix)
        assert sdg.is_vulnerable("Swap", "Swap")
        assert not sdg.is_si_serializable()


class TestRendering:
    def test_describe_mentions_structures(self):
        text = build_sdg(write_skew_mix()).describe()
        assert "DANGEROUS STRUCTURES" in text
        assert "P1 -(v)-> P2 -(v)-> P1" in text

    def test_describe_safe_mix(self):
        text = build_sdg(protected_mix()).describe()
        assert "serializable" in text

    def test_dot_output_conventions(self):
        dot = build_sdg(write_skew_mix()).to_dot()
        assert "digraph SDG" in dot
        assert "style=dashed" in dot  # vulnerable edges
        assert "fillcolor=lightgrey" in dot  # update programs shaded
