"""Session behaviour: blocking with real threads, deadlocks, hooks."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import Database, Session
from repro.engine.session import NoWaitWaiter, WouldBlock
from repro.errors import (
    DeadlockError,
    SerializationFailure,
    TransactionStateError,
)


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return False


class TestSessionBasics:
    def test_begin_twice_rejected(self, db: Database):
        s = Session(db)
        s.begin()
        with pytest.raises(TransactionStateError):
            s.begin()

    def test_statement_without_begin_rejected(self, db: Database):
        s = Session(db)
        with pytest.raises(TransactionStateError):
            s.select("Saving", 1)

    def test_update_returns_false_for_missing_row(self, db: Database):
        s = Session(db)
        s.begin()
        assert s.update("Saving", 999, {"Balance": 1.0}) is False

    def test_update_with_callable_changes(self, db: Database):
        s = Session(db)
        s.begin()
        assert s.update("Saving", 1, lambda r: {"Balance": r["Balance"] * 2})
        s.commit()
        check = Session(db)
        check.begin()
        assert check.select("Saving", 1)["Balance"] == 200.0

    def test_identity_update_creates_a_version_with_same_value(self, db):
        s = Session(db)
        s.begin("promoted")
        assert s.identity_update("Saving", 1, "Balance")
        assert s.transaction.needs_wal_flush
        s.commit()
        check = Session(db)
        check.begin()
        assert check.select("Saving", 1)["Balance"] == 100.0
        chain = db.catalog.table("Saving").chain(1)
        assert len(chain) == 2  # bootstrap + identity write

    def test_rollback_without_begin_is_noop(self, db: Database):
        Session(db).rollback()

    def test_session_reusable_after_commit(self, db: Database):
        s = Session(db)
        s.begin()
        s.select("Saving", 1)
        s.commit()
        s.begin()
        assert s.select("Saving", 2)["Balance"] == 100.0
        s.commit()

    def test_statement_hook_counts_statements(self, db: Database):
        counted: list[str] = []
        s = Session(db, statement_hook=lambda kind, txn: counted.append(kind))
        s.begin()
        s.select("Saving", 1)
        s.update("Checking", 1, {"Balance": 0.0})
        s.identity_update("Saving", 1, "Balance")
        s.commit()
        assert counted == ["select", "update", "identity-update"]

    def test_pre_commit_hook_only_for_writers(self, db: Database):
        flushed: list[int] = []
        s = Session(db, pre_commit_hook=lambda txn: flushed.append(txn.txid))
        s.begin("reader")
        s.select("Saving", 1)
        s.commit()
        assert flushed == []
        s.begin("writer")
        s.update("Saving", 1, {"Balance": 0.0})
        s.commit()
        assert len(flushed) == 1


class TestThreadedBlocking:
    def test_blocked_writer_aborts_when_holder_commits(self, db: Database):
        holder = Session(db)
        holder.begin("holder")
        holder.update("Saving", 1, {"Balance": 1.0})

        errors: list[Exception] = []
        started = threading.Event()

        def blocked_writer():
            s = Session(db)
            s.begin("waiter")
            started.set()
            try:
                s.update("Saving", 1, {"Balance": 2.0})
                s.commit()
            except Exception as exc:  # noqa: BLE001 - recorded for assertion
                errors.append(exc)

        thread = threading.Thread(target=blocked_writer)
        thread.start()
        started.wait()
        assert wait_until(lambda: len(db.active_transactions) == 2)
        # Give the waiter time to actually block on the lock.
        assert wait_until(
            lambda: any(
                db.locks.waiting_for(t.txid) for t in db.active_transactions
            )
        )
        holder.commit()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert len(errors) == 1 and isinstance(errors[0], SerializationFailure)

    def test_blocked_writer_proceeds_when_holder_aborts(self, db: Database):
        holder = Session(db)
        holder.begin("holder")
        holder.update("Saving", 1, {"Balance": 1.0})

        done = threading.Event()
        results: list[float] = []

        def blocked_writer():
            s = Session(db)
            s.begin("waiter")
            s.update("Saving", 1, {"Balance": 2.0})
            s.commit()
            results.append(2.0)
            done.set()

        thread = threading.Thread(target=blocked_writer)
        thread.start()
        assert wait_until(
            lambda: any(
                db.locks.waiting_for(t.txid) for t in db.active_transactions
            )
        )
        holder.rollback()
        assert done.wait(timeout=5)
        thread.join(timeout=5)
        check = Session(db)
        check.begin()
        assert check.select("Saving", 1)["Balance"] == 2.0

    def test_deadlock_aborts_second_waiter(self, db: Database):
        """Two sessions locking (1 then 2) and (2 then 1)."""
        s1 = Session(db)
        s1.begin("a")
        s1.update("Saving", 1, {"Balance": 1.0})

        s2 = Session(db)
        s2.begin("b")
        s2.update("Saving", 2, {"Balance": 2.0})

        outcome: list[str] = []

        def cross_writer():
            try:
                s1.update("Saving", 2, {"Balance": 3.0})  # blocks on s2
                s1.commit()
                outcome.append("s1-committed")
            except (DeadlockError, SerializationFailure) as exc:
                outcome.append(type(exc).__name__)

        thread = threading.Thread(target=cross_writer)
        thread.start()
        assert wait_until(lambda: bool(db.locks.waiting_for(s1.txn.txid)))
        # s2 closing the cycle must raise DeadlockError immediately.
        with pytest.raises(DeadlockError):
            s2.update("Saving", 1, {"Balance": 4.0})
        # s2 was aborted by the deadlock; its lock release unblocks s1.
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert outcome == ["s1-committed"]

    def test_nowait_waiter_raises_would_block(self, db: Database):
        holder = Session(db)
        holder.begin()
        holder.update("Saving", 1, {"Balance": 1.0})
        probe = Session(db, waiter=NoWaitWaiter())
        probe.begin()
        with pytest.raises(WouldBlock) as exc_info:
            probe.update("Saving", 1, {"Balance": 2.0})
        assert exc_info.value.wait.blocker_ids == {holder.txn.txid}

    def test_many_concurrent_increments_conserve_total(self, db: Database):
        """8 threads x 25 increments with retry: final balance is exact."""
        increments = 25
        threads = 8

        def worker():
            done = 0
            while done < increments:
                s = Session(db)
                s.begin("inc")
                try:
                    s.update(
                        "Checking", 1, lambda r: {"Balance": r["Balance"] + 1}
                    )
                    s.commit()
                    done += 1
                except (SerializationFailure, DeadlockError):
                    continue

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join(timeout=60)
        check = Session(db)
        check.begin()
        assert check.select("Checking", 1)["Balance"] == 50.0 + threads * increments
