"""Tests for the discrete-event simulator core."""

from __future__ import annotations

import pytest

from repro.sim.core import SimDeadlock, SimEvent, Simulator


class TestScheduling:
    def test_callbacks_run_in_time_order(self):
        sim = Simulator()
        log: list[tuple[float, str]] = []
        sim.schedule(2.0, lambda: log.append((sim.now, "b")))
        sim.schedule(1.0, lambda: log.append((sim.now, "a")))
        sim.schedule(3.0, lambda: log.append((sim.now, "c")))
        sim.run_for(10.0)
        assert log == [(1.0, "a"), (2.0, "b"), (3.0, "c")]
        assert sim.now == 10.0

    def test_ties_broken_by_insertion_order(self):
        sim = Simulator()
        log: list[str] = []
        sim.schedule(1.0, lambda: log.append("first"))
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run_for(2.0)
        assert log == ["first", "second"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_deadline_excludes_later_events(self):
        sim = Simulator()
        log: list[str] = []
        sim.schedule(5.0, lambda: log.append("late"))
        sim.run_for(3.0)
        assert log == []
        sim.run_for(3.0)
        assert log == ["late"]


class TestProcesses:
    def test_process_sleep_advances_with_clock(self):
        sim = Simulator()
        trace: list[float] = []

        def proc():
            trace.append(sim.now)
            sim.sleep(1.5)
            trace.append(sim.now)
            sim.sleep(0.5)
            trace.append(sim.now)

        sim.spawn(proc)
        sim.run_for(10.0)
        sim.shutdown()
        assert trace == [0.0, 1.5, 2.0]

    def test_two_processes_interleave_deterministically(self):
        sim = Simulator()
        trace: list[str] = []

        def make(name: str, period: float):
            def proc():
                for _ in range(3):
                    sim.sleep(period)
                    trace.append(f"{name}@{sim.now}")

            return proc

        sim.spawn(make("a", 1.0))
        sim.spawn(make("b", 1.5))
        sim.run_for(10.0)
        sim.shutdown()
        # At t=3.0 both wake; b's wake event was scheduled earlier
        # (at t=1.5 vs t=2.0), so the (time, sequence) order runs b first.
        assert trace == [
            "a@1.0", "b@1.5", "a@2.0", "b@3.0", "a@3.0", "b@4.5",
        ]

    def test_infinite_process_stopped_by_shutdown(self):
        sim = Simulator()
        counter = [0]

        def forever():
            while True:
                sim.checkpoint()
                sim.sleep(0.1)
                counter[0] += 1

        sim.spawn(forever)
        sim.run_for(1.05)
        sim.shutdown()
        assert counter[0] == 10

    def test_spawn_during_run(self):
        sim = Simulator()
        trace: list[float] = []

        def child():
            trace.append(sim.now)

        def parent():
            sim.sleep(2.0)
            sim.spawn(child, name="child")

        sim.spawn(parent, name="parent")
        sim.run_for(5.0)
        sim.shutdown()
        assert trace == [2.0]

    def test_primitive_outside_process_rejected(self):
        sim = Simulator()
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            sim.sleep(1.0)


class TestEvents:
    def test_event_wakes_waiter(self):
        sim = Simulator()
        trace: list[str] = []
        event = SimEvent(sim)

        def waiter():
            event.wait()
            trace.append(f"woke@{sim.now}")

        def firer():
            sim.sleep(3.0)
            event.fire()

        sim.spawn(waiter)
        sim.spawn(firer)
        sim.run_for(10.0)
        sim.shutdown()
        assert trace == ["woke@3.0"]

    def test_fired_event_does_not_block(self):
        sim = Simulator()
        event = SimEvent(sim)
        event.fire()
        trace: list[float] = []

        def proc():
            event.wait()
            trace.append(sim.now)

        sim.spawn(proc)
        sim.run_for(1.0)
        sim.shutdown()
        assert trace == [0.0]

    def test_fire_is_idempotent(self):
        sim = Simulator()
        event = SimEvent(sim)
        woken = [0]

        def waiter():
            event.wait()
            woken[0] += 1

        sim.spawn(waiter)
        sim.schedule(1.0, event.fire)
        sim.schedule(1.0, event.fire)
        sim.run_for(5.0)
        sim.shutdown()
        assert woken[0] == 1

    def test_multiple_waiters_all_wake(self):
        sim = Simulator()
        event = SimEvent(sim)
        woken: list[str] = []

        def waiter(name: str):
            def proc():
                event.wait()
                woken.append(name)

            return proc

        for name in ("x", "y", "z"):
            sim.spawn(waiter(name), name=name)
        sim.schedule(2.0, event.fire)
        sim.run_for(5.0)
        sim.shutdown()
        assert woken == ["x", "y", "z"]


class TestDeadlockDetection:
    def test_wedged_simulation_raises(self):
        sim = Simulator()
        event = SimEvent(sim)  # never fired

        def stuck():
            event.wait()

        sim.spawn(stuck)
        with pytest.raises(SimDeadlock):
            sim.run_for(1.0)
        sim.shutdown()
