"""Tests for simulated resources: FIFO servers and group-commit log."""

from __future__ import annotations

import pytest

from repro.sim.core import Simulator
from repro.sim.resources import GroupCommitLog, Resource


class TestResource:
    def test_single_server_serializes_users(self):
        sim = Simulator()
        cpu = Resource(sim, capacity=1)
        trace: list[tuple[str, float]] = []

        def user(name: str):
            def proc():
                cpu.use(1.0)
                trace.append((name, sim.now))

            return proc

        sim.spawn(user("a"))
        sim.spawn(user("b"))
        sim.spawn(user("c"))
        sim.run_for(10.0)
        sim.shutdown()
        assert trace == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_two_servers_run_in_parallel(self):
        sim = Simulator()
        cpu = Resource(sim, capacity=2)
        done: list[float] = []

        def user():
            cpu.use(1.0)
            done.append(sim.now)

        for _ in range(4):
            sim.spawn(user)
        sim.run_for(10.0)
        sim.shutdown()
        assert done == [1.0, 1.0, 2.0, 2.0]

    def test_fifo_ordering(self):
        sim = Simulator()
        cpu = Resource(sim, capacity=1)
        order: list[str] = []

        def user(name: str, arrive: float):
            def proc():
                sim.sleep(arrive)
                cpu.use(2.0)
                order.append(name)

            return proc

        sim.spawn(user("late", 1.0))
        sim.spawn(user("early", 0.5))
        sim.spawn(user("first", 0.0))
        sim.run_for(20.0)
        sim.shutdown()
        assert order == ["first", "early", "late"]

    def test_utilization_accounting(self):
        sim = Simulator()
        cpu = Resource(sim, capacity=1)

        def user():
            cpu.use(2.0)

        sim.spawn(user)
        sim.run_for(4.0)
        sim.shutdown()
        assert cpu.utilization() == pytest.approx(0.5)

    def test_invalid_capacity_and_release(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)
        cpu = Resource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            cpu.release()


class TestGroupCommitLog:
    def test_single_commit_waits_delay_plus_flush(self):
        sim = Simulator()
        wal = GroupCommitLog(sim, flush_time=0.010, commit_delay=0.002)
        done: list[float] = []

        def committer():
            wal.commit_flush()
            done.append(sim.now)

        sim.spawn(committer)
        sim.run_for(1.0)
        sim.shutdown()
        assert done == [pytest.approx(0.012)]
        assert wal.flush_count == 1

    def test_commits_within_window_share_a_flush(self):
        sim = Simulator()
        wal = GroupCommitLog(sim, flush_time=0.010, commit_delay=0.002)
        done: list[float] = []

        def committer(offset: float):
            def proc():
                sim.sleep(offset)
                wal.commit_flush()
                done.append(sim.now)

            return proc

        sim.spawn(committer(0.0))
        sim.spawn(committer(0.001))  # arrives inside the gather window
        sim.run_for(1.0)
        sim.shutdown()
        assert done == [pytest.approx(0.012)] * 2
        assert wal.flush_count == 1
        assert wal.mean_batch_size == 2.0

    def test_commit_during_flush_rides_the_next_one(self):
        sim = Simulator()
        wal = GroupCommitLog(sim, flush_time=0.010, commit_delay=0.002)
        done: list[tuple[str, float]] = []

        def committer(name: str, offset: float):
            def proc():
                sim.sleep(offset)
                wal.commit_flush()
                done.append((name, sim.now))

            return proc

        sim.spawn(committer("first", 0.0))
        sim.spawn(committer("second", 0.005))  # mid-flush of the first
        sim.run_for(1.0)
        sim.shutdown()
        assert done[0] == ("first", pytest.approx(0.012))
        # The second flush starts immediately when the first ends (0.012)
        # and takes another 10 ms.
        assert done[1] == ("second", pytest.approx(0.022))
        assert wal.flush_count == 2

    def test_back_to_back_batches_under_load(self):
        sim = Simulator()
        wal = GroupCommitLog(sim, flush_time=0.010, commit_delay=0.002)
        completions = [0]

        def committer():
            while True:
                sim.checkpoint()
                wal.commit_flush()
                completions[0] += 1

        for _ in range(8):
            sim.spawn(committer)
        sim.run_for(1.0)
        sim.shutdown()
        # Closed-loop committers re-request only after waking, so each
        # cycle is gather-window + flush = 12 ms with all 8 on board.
        assert wal.flush_count == pytest.approx(83, abs=3)
        assert completions[0] == pytest.approx(664, abs=30)
        assert wal.mean_batch_size == pytest.approx(8.0, abs=0.5)

    def test_invalid_flush_time(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            GroupCommitLog(sim, flush_time=0.0)
