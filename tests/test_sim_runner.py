"""Integration tests for the simulation runner and platform models.

These assert the *mechanisms* the paper's analysis rests on, on small/fast
configurations (full figure-scale checks live in the benchmark harness).
"""

from __future__ import annotations

import pytest

from repro.analysis import check_history
from repro.analysis.recorder import ExecutionRecorder
from repro.sim import (
    SimulationConfig,
    commercial_platform,
    get_platform,
    postgres_platform,
    run_once,
    run_replicated,
)


def quick(**overrides) -> SimulationConfig:
    defaults = dict(
        customers=400,
        hotspot=100,
        ramp_up=0.2,
        measure=1.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestPlatformModels:
    def test_lookup(self):
        assert get_platform("postgres").name == "postgres"
        assert get_platform("commercial").name == "commercial"
        with pytest.raises(KeyError):
            get_platform("oracle11g")

    def test_statement_cost_fallback(self):
        platform = postgres_platform()
        assert platform.statement_cost("select") > 0
        assert platform.statement_cost("unknown-kind") == pytest.approx(
            platform.default_statement_cost
        )

    def test_identity_cheaper_than_materialize_on_postgres(self):
        platform = postgres_platform()
        assert platform.statement_cost("identity-update") < platform.statement_cost(
            "materialize-update"
        )

    def test_ranking_reversed_on_commercial(self):
        platform = commercial_platform()
        assert platform.statement_cost("identity-update") > platform.statement_cost(
            "materialize-update"
        )

    def test_sfu_flush_semantics_differ(self):
        assert not postgres_platform().needs_flush(
            wrote_data=False, used_sfu=True
        )
        assert commercial_platform().needs_flush(
            wrote_data=False, used_sfu=True
        )
        assert postgres_platform().needs_flush(wrote_data=True, used_sfu=False)

    def test_thrash_multiplier_kicks_in_past_knee(self):
        platform = commercial_platform()
        assert platform.cpu_multiplier(1) == 1.0
        assert platform.cpu_multiplier(platform.thrash_knee) == 1.0
        assert platform.cpu_multiplier(platform.thrash_knee + 10) > 1.0
        assert postgres_platform().cpu_multiplier(1000) == 1.0


class TestRunOnce:
    def test_deterministic_given_seed(self):
        a = run_once(quick(mpl=4, seed=9))
        b = run_once(quick(mpl=4, seed=9))
        assert a.tps == b.tps
        assert a.commits == b.commits
        assert a.aborts == b.aborts

    def test_different_seeds_differ(self):
        a = run_once(quick(mpl=4, seed=1))
        b = run_once(quick(mpl=4, seed=2))
        assert a.commits != b.commits

    def test_throughput_scales_with_mpl_then_saturates(self):
        tps = {
            mpl: run_once(quick(mpl=mpl)).tps for mpl in (1, 4, 30)
        }
        assert tps[1] < tps[4] < tps[30]
        # Saturation: x30 clients deliver far less than x30 throughput.
        assert tps[30] < tps[1] * 20

    def test_mpl1_has_no_aborts(self):
        stats = run_once(quick(mpl=1))
        assert stats.abort_count() == 0

    def test_bw_strategy_slower_at_mpl1(self):
        """The Figure 5(b) MPL-1 effect: making Balance a writer costs
        ~20 % because every transaction now waits for a WAL flush."""
        si = run_once(quick(mpl=1)).tps
        bw = run_once(quick(mpl=1, strategy="promote-bw-upd")).tps
        wt = run_once(quick(mpl=1, strategy="promote-wt-upd")).tps
        assert bw / si == pytest.approx(0.82, abs=0.05)
        assert wt / si == pytest.approx(1.0, abs=0.02)

    def test_commercial_declines_past_peak(self):
        peak = run_once(quick(platform="commercial", mpl=20)).tps
        past = run_once(quick(platform="commercial", mpl=30)).tps
        assert past < peak * 0.85

    def test_postgres_plateaus_not_declines(self):
        at20 = run_once(quick(mpl=20)).tps
        at30 = run_once(quick(mpl=30)).tps
        assert at30 > at20 * 0.9

    def test_high_contention_hurts_materialize_bw(self):
        si = run_once(quick(mpl=15, hotspot=10, mix="balance60")).tps
        bad = run_once(
            quick(mpl=15, hotspot=10, mix="balance60",
                  strategy="materialize-bw")
        ).tps
        good = run_once(
            quick(mpl=15, hotspot=10, mix="balance60",
                  strategy="promote-wt-upd")
        ).tps
        assert bad < si * 0.7
        assert good > si * 0.85

    def test_replication_aggregates(self):
        result = run_replicated(quick(mpl=4), repetitions=2)
        assert len(result.runs) == 2
        assert result.tps > 0

    def test_paper_scale_preset(self):
        config = quick(mpl=5).at_paper_scale()
        assert config.customers == 18_000
        assert config.hotspot == 1_000
        high = quick(mpl=5, hotspot=10).at_paper_scale()
        assert high.hotspot == 10


class TestSimulatedHistoriesAreSound:
    """The simulator uses the same engine, so its histories obey the same
    guarantees — check with the MVSG analysis."""

    def test_fixed_strategy_history_serializable(self):
        # Attach a recorder to the database run_once builds internally.
        import repro.sim.runner as runner_mod

        captured = {}
        original = runner_mod.build_database

        def capturing_build(config, population):
            db = original(config, population)
            captured["recorder"] = ExecutionRecorder().attach(db)
            return db

        runner_mod.build_database = capturing_build
        try:
            run_once(quick(mpl=8, strategy="promote-wt-upd", measure=0.5))
        finally:
            runner_mod.build_database = original
        recorder = captured["recorder"]
        assert len(recorder) > 0
        report = check_history(list(recorder.committed))
        assert report.serializable, report.describe()
