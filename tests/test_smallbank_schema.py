"""Schema/population tests for SmallBank."""

from __future__ import annotations

import pytest

from repro.engine import EngineConfig, Session
from repro.smallbank import (
    ACCOUNT,
    CHECKING,
    CONFLICT,
    SAVING,
    PopulationConfig,
    build_database,
    customer_name,
    smallbank_schemas,
    total_money,
)


class TestSchemas:
    def test_four_tables(self):
        names = {schema.name for schema in smallbank_schemas()}
        assert names == {ACCOUNT, SAVING, CHECKING, CONFLICT}

    def test_account_unique_customer_id(self):
        account = next(s for s in smallbank_schemas() if s.name == ACCOUNT)
        assert account.primary_key == "Name"
        assert account.unique == ("CustomerId",)


class TestPopulation:
    def test_population_is_deterministic(self):
        a = build_database(population=PopulationConfig(customers=10))
        b = build_database(population=PopulationConfig(customers=10))
        assert total_money(a) == total_money(b)

    def test_every_customer_has_all_rows(self):
        db = build_database(population=PopulationConfig(customers=5))
        session = Session(db)
        session.begin()
        for cid in range(1, 6):
            account = session.select(ACCOUNT, customer_name(cid))
            assert account is not None and account["CustomerId"] == cid
            assert session.select(SAVING, cid) is not None
            assert session.select(CHECKING, cid) is not None
            conflict = session.select(CONFLICT, cid)
            assert conflict is not None and conflict["Value"] == 0
        session.commit()

    def test_balances_within_configured_ranges(self):
        population = PopulationConfig(
            customers=20,
            min_saving=10.0,
            max_saving=20.0,
            min_checking=1.0,
            max_checking=2.0,
        )
        db = build_database(population=population)
        session = Session(db)
        session.begin()
        for cid in range(1, 21):
            saving = session.select(SAVING, cid)["Balance"]
            checking = session.select(CHECKING, cid)["Balance"]
            assert 10.0 <= saving <= 20.0
            assert 1.0 <= checking <= 2.0
        session.commit()

    def test_lookup_by_customer_id(self):
        db = build_database(population=PopulationConfig(customers=3))
        session = Session(db)
        session.begin()
        found = session.lookup_unique(ACCOUNT, "CustomerId", 2)
        assert found is not None and found[0] == customer_name(2)

    def test_engine_config_passthrough(self):
        db = build_database(EngineConfig.commercial())
        assert db.config == EngineConfig.commercial()

    def test_total_money_sums_both_tables(self):
        population = PopulationConfig(
            customers=2,
            min_saving=100.0,
            max_saving=100.0,
            min_checking=10.0,
            max_checking=10.0,
        )
        db = build_database(population=population)
        assert total_money(db) == pytest.approx(220.0)
