"""SmallBank SDG analysis — asserts the paper's Figures 1, 2, 3 and Table I.

Everything checked here is *derived* by the generic analysis in
:mod:`repro.core` from the program specs; nothing is hard-coded, so these
tests pin the reproduction to the paper's published analysis.
"""

from __future__ import annotations

import pytest

from repro.core import build_sdg
from repro.smallbank import (
    ALL_STRATEGIES,
    CHECKING,
    CONFLICT,
    SAVING,
    get_strategy,
    smallbank_specs,
)

BAL = "Balance"
DC = "DepositChecking"
TS = "TransactSaving"
AMG = "Amalgamate"
WC = "WriteCheck"


@pytest.fixture(scope="module")
def sdg():
    return build_sdg(smallbank_specs())


class TestFigure1:
    """Section III-C: the SDG for the (unmodified) SmallBank benchmark."""

    def test_balance_is_the_only_read_only_program(self):
        specs = smallbank_specs()
        assert specs[BAL].is_read_only
        for name in (DC, TS, AMG, WC):
            assert specs[name].is_update_program

    def test_vulnerable_edges_exactly_match_figure_1(self, sdg):
        assert sdg.vulnerable_edges() == (
            (BAL, AMG),
            (BAL, DC),
            (BAL, TS),
            (BAL, WC),
            (WC, TS),
        )

    def test_wc_to_amg_is_protected_by_the_checking_write(self, sdg):
        """'whenever Amg writes a row in Saving it also writes the
        corresponding row in Checking' — the subtle case of the analysis."""
        edge = sdg.edge(WC, AMG)
        assert edge is not None and edge.exists
        assert not edge.vulnerable

    def test_read_modify_write_programs_have_no_vulnerable_out_edges(
        self, sdg
    ):
        """'TS, Amg and DC all read an item only if they will then modify
        it; from such a program, any read-write conflict is also a
        write-write conflict and thus not vulnerable.'"""
        for source in (TS, AMG, DC):
            for target in sdg.nodes:
                assert not sdg.is_vulnerable(source, target), (source, target)

    def test_unique_dangerous_structure_is_bal_wc_ts(self, sdg):
        structures = sdg.dangerous_structures()
        assert [str(s) for s in structures] == [
            "Balance -(v)-> WriteCheck -(v)-> TransactSaving"
        ]
        assert sdg.pivots() == (WC,)
        assert not sdg.is_si_serializable()


class TestFigure2:
    """Option WT: only the WriteCheck -> TransactSaving edge changes."""

    @pytest.mark.parametrize(
        "key", ["materialize-wt", "promote-wt-upd", "promote-wt-sfu"]
    )
    def test_wt_edge_no_longer_vulnerable(self, key):
        fixed = build_sdg(get_strategy(key).specs(), sfu_is_write=True)
        assert not fixed.is_vulnerable(WC, TS)
        assert fixed.is_si_serializable()

    @pytest.mark.parametrize(
        "key", ["materialize-wt", "promote-wt-upd", "promote-wt-sfu"]
    )
    def test_balance_outgoing_edges_unchanged(self, key):
        fixed = build_sdg(get_strategy(key).specs(), sfu_is_write=True)
        for target in (AMG, DC, TS, WC):
            assert fixed.is_vulnerable(BAL, target)

    def test_balance_stays_read_only_under_wt(self):
        for key in ("materialize-wt", "promote-wt-upd", "promote-wt-sfu"):
            specs = get_strategy(key).specs()
            # The WT options never touch Balance -- the performance
            # argument of Section IV-D.
            assert specs[BAL].accesses == smallbank_specs()[BAL].accesses


class TestFigure3:
    """Option BW: the Balance -> WriteCheck edge changes (and Balance
    becomes an updater)."""

    @pytest.mark.parametrize(
        "key", ["materialize-bw", "promote-bw-upd", "promote-bw-sfu"]
    )
    def test_bw_edge_no_longer_vulnerable(self, key):
        fixed = build_sdg(get_strategy(key).specs(), sfu_is_write=True)
        assert not fixed.is_vulnerable(BAL, WC)
        assert fixed.is_si_serializable()

    def test_wc_ts_edge_remains_vulnerable_under_bw(self):
        """BW works because TS is not the source of any vulnerable edge —
        the remaining vulnerable WC->TS edge has no vulnerable successor."""
        fixed = build_sdg(get_strategy("materialize-bw").specs())
        assert fixed.is_vulnerable(WC, TS)
        assert fixed.is_si_serializable()

    def test_balance_becomes_an_updater(self):
        for key in ("materialize-bw", "promote-bw-upd"):
            assert get_strategy(key).specs()[BAL].is_update_program

    def test_promote_bw_creates_contention_with_dc_and_amg(self):
        """Figure 3(b): the promoted Balance writes Checking, so its edges
        to DepositChecking and Amalgamate change — the cause of the extra
        aborts in Figure 6."""
        fixed = build_sdg(get_strategy("promote-bw-upd").specs())
        for target in (DC, AMG):
            edge = fixed.edge(BAL, target)
            assert edge is not None
            assert "ww" in edge.conflict_kinds

    def test_materialize_bw_does_not_touch_checking(self):
        specs = get_strategy("materialize-bw").specs()
        assert CHECKING not in specs[BAL].tables_written()
        assert CONFLICT in specs[BAL].tables_written()


class TestSfuSemanticsSplit:
    """SFU promotions fix commercial platforms only (Section II-C)."""

    @pytest.mark.parametrize("key", ["promote-wt-sfu", "promote-bw-sfu"])
    def test_sfu_vulnerable_again_under_postgres_semantics(self, key):
        strategy = get_strategy(key)
        assert strategy.serializable_on_commercial
        assert not strategy.serializable_on_postgres

    @pytest.mark.parametrize(
        "key",
        [
            "materialize-wt",
            "promote-wt-upd",
            "materialize-bw",
            "promote-bw-upd",
            "materialize-all",
            "promote-all",
        ],
    )
    def test_non_sfu_strategies_fix_both_platforms(self, key):
        strategy = get_strategy(key)
        assert strategy.serializable_on_postgres
        assert strategy.serializable_on_commercial


class TestAllVariants:
    def test_materialize_all_leaves_no_vulnerable_edges(self):
        sdg = build_sdg(get_strategy("materialize-all").specs())
        assert sdg.vulnerable_edges() == ()

    def test_promote_all_leaves_no_vulnerable_edges(self):
        sdg = build_sdg(get_strategy("promote-all").specs())
        assert sdg.vulnerable_edges() == ()

    def test_promote_all_adds_two_writes_to_balance_one_to_wc(self):
        """'we simply add two writes to Balance, and one to WriteCheck,
        without changing the other programs' (Section IV-A)."""
        row = get_strategy("promote-all").table_one_row()
        assert row == {
            BAL: (CHECKING, SAVING),
            WC: (SAVING,),
        }

    def test_materialize_all_touches_every_program(self):
        row = get_strategy("materialize-all").table_one_row()
        assert set(row) == {BAL, DC, TS, AMG, WC}
        assert all(tables == (CONFLICT,) for tables in row.values())

    def test_materialize_all_amalgamate_updates_two_conflict_rows(self):
        """'transaction Amg must update two rows in Conflict, one for each
        parameter' (Section III-D(c))."""
        mods = get_strategy("materialize-all").modifications()
        amg_keys = {m.key for m in mods if m.program == AMG}
        assert amg_keys == {"x1", "x2"}


class TestTableOne:
    """Table I: overview of tables updated with each option."""

    EXPECTED = {
        "base-si": {},
        "materialize-wt": {WC: (CONFLICT,), TS: (CONFLICT,)},
        "promote-wt-upd": {WC: (SAVING,)},
        "promote-wt-sfu": {WC: (SAVING,)},
        "materialize-bw": {BAL: (CONFLICT,), WC: (CONFLICT,)},
        "promote-bw-upd": {BAL: (CHECKING,)},
        "promote-bw-sfu": {BAL: (CHECKING,)},
        "materialize-all": {
            BAL: (CONFLICT,),
            DC: (CONFLICT,),
            TS: (CONFLICT,),
            AMG: (CONFLICT,),
            WC: (CONFLICT,),
        },
        "promote-all": {BAL: (CHECKING, SAVING), WC: (SAVING,)},
    }

    @pytest.mark.parametrize("key", sorted(EXPECTED))
    def test_table_one_row(self, key):
        assert get_strategy(key).table_one_row() == self.EXPECTED[key]

    def test_only_wt_options_keep_balance_read_only(self):
        """'except for Option WT, all options introduce updates into the
        originally read-only Balance transaction' (Section III-E)."""
        for strategy in ALL_STRATEGIES:
            bal_modified = BAL in strategy.table_one_row()
            if strategy.key in (
                "base-si",
                "materialize-wt",
                "promote-wt-upd",
                "promote-wt-sfu",
            ):
                assert not bal_modified, strategy.key
            else:
                assert bal_modified, strategy.key
