"""Behavioural tests for the five SmallBank programs (paper Section III-B)."""

from __future__ import annotations

import pytest

from repro.engine import Database, Session
from repro.errors import ApplicationRollback
from repro.smallbank import (
    CHECKING,
    CONFLICT,
    SAVING,
    PopulationConfig,
    SmallBankTransactions,
    build_database,
    customer_name,
    get_strategy,
    total_money,
)


def fixed_db(customers: int = 4) -> Database:
    population = PopulationConfig(
        customers=customers,
        min_saving=100.0,
        max_saving=100.0,
        min_checking=50.0,
        max_checking=50.0,
    )
    return build_database(population=population)


@pytest.fixture
def db() -> Database:
    return fixed_db()


@pytest.fixture
def txns() -> SmallBankTransactions:
    return SmallBankTransactions()


def run(db, txns, program, args):
    session = Session(db)
    return txns.run(session, program, args)


def balances(db, cid) -> tuple[float, float]:
    session = Session(db)
    session.begin()
    saving = session.select(SAVING, cid)["Balance"]
    checking = session.select(CHECKING, cid)["Balance"]
    session.commit()
    return saving, checking


class TestBalance:
    def test_returns_total(self, db, txns):
        total = run(db, txns, "Balance", {"N": customer_name(1)})
        assert total == 150.0

    def test_unknown_name_rolls_back(self, db, txns):
        with pytest.raises(ApplicationRollback):
            run(db, txns, "Balance", {"N": "nobody"})

    def test_is_read_only(self, db, txns):
        run(db, txns, "Balance", {"N": customer_name(1)})
        assert len(db.wal) == 0


class TestDepositChecking:
    def test_deposit_increases_checking(self, db, txns):
        run(db, txns, "DepositChecking", {"N": customer_name(1), "V": 25.0})
        assert balances(db, 1) == (100.0, 75.0)

    def test_negative_deposit_rolls_back(self, db, txns):
        with pytest.raises(ApplicationRollback):
            run(db, txns, "DepositChecking", {"N": customer_name(1), "V": -1.0})
        assert balances(db, 1) == (100.0, 50.0)

    def test_unknown_name_rolls_back(self, db, txns):
        with pytest.raises(ApplicationRollback):
            run(db, txns, "DepositChecking", {"N": "nobody", "V": 5.0})


class TestTransactSaving:
    def test_deposit(self, db, txns):
        run(db, txns, "TransactSaving", {"N": customer_name(2), "V": 10.0})
        assert balances(db, 2) == (110.0, 50.0)

    def test_withdrawal(self, db, txns):
        run(db, txns, "TransactSaving", {"N": customer_name(2), "V": -40.0})
        assert balances(db, 2) == (60.0, 50.0)

    def test_overdraw_rolls_back(self, db, txns):
        with pytest.raises(ApplicationRollback):
            run(db, txns, "TransactSaving", {"N": customer_name(2), "V": -100.5})
        assert balances(db, 2) == (100.0, 50.0)

    def test_exact_zero_is_allowed(self, db, txns):
        run(db, txns, "TransactSaving", {"N": customer_name(2), "V": -100.0})
        assert balances(db, 2) == (0.0, 50.0)


class TestAmalgamate:
    def test_moves_all_funds(self, db, txns):
        run(
            db,
            txns,
            "Amalgamate",
            {"N1": customer_name(1), "N2": customer_name(2)},
        )
        assert balances(db, 1) == (0.0, 0.0)
        assert balances(db, 2) == (100.0, 200.0)

    def test_conserves_money(self, db, txns):
        before = total_money(db)
        run(
            db,
            txns,
            "Amalgamate",
            {"N1": customer_name(3), "N2": customer_name(4)},
        )
        assert total_money(db) == before

    def test_unknown_second_name_rolls_back(self, db, txns):
        with pytest.raises(ApplicationRollback):
            run(
                db,
                txns,
                "Amalgamate",
                {"N1": customer_name(1), "N2": "nobody"},
            )
        assert balances(db, 1) == (100.0, 50.0)


class TestWriteCheck:
    def test_sufficient_funds_debit_without_penalty(self, db, txns):
        penalized = run(
            db, txns, "WriteCheck", {"N": customer_name(1), "V": 120.0}
        )
        assert penalized is False
        # Check is written against checking even when it overdraws it;
        # penalty only applies when total (saving+checking) is short.
        assert balances(db, 1) == (100.0, -70.0)

    def test_insufficient_total_charges_penalty(self, db, txns):
        penalized = run(
            db, txns, "WriteCheck", {"N": customer_name(1), "V": 151.0}
        )
        assert penalized is True
        assert balances(db, 1) == (100.0, 50.0 - 152.0)

    def test_boundary_equal_total_no_penalty(self, db, txns):
        penalized = run(
            db, txns, "WriteCheck", {"N": customer_name(1), "V": 150.0}
        )
        assert penalized is False

    def test_unknown_name_rolls_back(self, db, txns):
        with pytest.raises(ApplicationRollback):
            run(db, txns, "WriteCheck", {"N": "nobody", "V": 10.0})


class TestStrategyInjectedStatements:
    def test_materialize_wt_touches_conflict(self, db):
        txns = get_strategy("materialize-wt").transactions()
        run(db, txns, "WriteCheck", {"N": customer_name(1), "V": 10.0})
        run(db, txns, "TransactSaving", {"N": customer_name(1), "V": 5.0})
        session = Session(db)
        session.begin()
        assert session.select(CONFLICT, 1)["Value"] == 2
        # Balance is untouched by the WT option.
        run(db, txns, "Balance", {"N": customer_name(2)})
        assert session.select(CONFLICT, 2)["Value"] == 0

    def test_promote_wt_adds_identity_write_in_writecheck(self, db):
        txns = get_strategy("promote-wt-upd").transactions()
        run(db, txns, "WriteCheck", {"N": customer_name(1), "V": 10.0})
        chain = db.catalog.table(SAVING).chain(1)
        assert len(chain) == 2  # bootstrap + identity version
        assert chain.latest().value["Balance"] == 100.0

    def test_promote_bw_makes_balance_an_updater(self, db):
        txns = get_strategy("promote-bw-upd").transactions()
        total = run(db, txns, "Balance", {"N": customer_name(1)})
        assert total == 150.0
        assert len(db.wal.records_for("Balance")) == 1

    def test_base_balance_stays_read_only(self, db):
        txns = get_strategy("base-si").transactions()
        run(db, txns, "Balance", {"N": customer_name(1)})
        assert len(db.wal) == 0

    def test_promote_all_balance_writes_both_tables(self, db):
        txns = get_strategy("promote-all").transactions()
        run(db, txns, "Balance", {"N": customer_name(1)})
        (record,) = db.wal.records_for("Balance")
        tables = {table for table, _key in record.rows}
        assert tables == {SAVING, CHECKING}

    def test_materialize_all_amalgamate_touches_two_conflict_rows(self, db):
        txns = get_strategy("materialize-all").transactions()
        run(
            db,
            txns,
            "Amalgamate",
            {"N1": customer_name(1), "N2": customer_name(2)},
        )
        session = Session(db)
        session.begin()
        assert session.select(CONFLICT, 1)["Value"] == 1
        assert session.select(CONFLICT, 2)["Value"] == 1

    def test_sfu_strategy_uses_select_for_update(self, db):
        txns = get_strategy("promote-wt-sfu").transactions()
        session = Session(db)
        session.begin("WriteCheck")
        txns.write_check(session, {"N": customer_name(1), "V": 10.0})
        assert (SAVING, 1) in session.transaction.sfu_rows
        session.commit()

    def test_all_strategies_preserve_program_semantics(self):
        """Every variant computes the same results as unmodified SmallBank."""
        for strategy in (
            "base-si",
            "materialize-wt",
            "promote-wt-upd",
            "promote-wt-sfu",
            "materialize-bw",
            "promote-bw-upd",
            "promote-bw-sfu",
            "materialize-all",
            "promote-all",
        ):
            db = fixed_db()
            txns = get_strategy(strategy).transactions()
            run(db, txns, "DepositChecking", {"N": customer_name(1), "V": 10.0})
            run(db, txns, "TransactSaving", {"N": customer_name(1), "V": -30.0})
            penalized = run(
                db, txns, "WriteCheck", {"N": customer_name(1), "V": 100.0}
            )
            total = run(db, txns, "Balance", {"N": customer_name(1)})
            run(
                db,
                txns,
                "Amalgamate",
                {"N1": customer_name(1), "N2": customer_name(2)},
            )
            assert penalized is False, strategy
            assert total == pytest.approx(30.0), strategy  # 70 + (-40)
            assert balances(db, 2) == (100.0, 80.0), strategy
