"""Tests for symbolic program specifications."""

from __future__ import annotations

import pytest

from repro.core import (
    Access,
    AccessKind,
    ProgramSet,
    ProgramSpec,
    cc_write,
    read,
    write,
    write_const,
)
from repro.errors import SpecError


def simple_program(name: str = "P") -> ProgramSpec:
    return ProgramSpec(
        name,
        ("x",),
        (read("T", "x", "v"), write("U", "x", "v")),
    )


class TestAccess:
    def test_requires_exactly_one_key(self):
        with pytest.raises(SpecError):
            Access(AccessKind.READ, "T")
        with pytest.raises(SpecError):
            Access(AccessKind.READ, "T", key_param="x", key_const="c")

    def test_shorthands(self):
        r = read("T", "x", "a", "b")
        assert r.kind is AccessKind.READ
        assert r.columns == frozenset({"a", "b"})
        w = write_const("T", "row0", "v")
        assert w.key_const == "row0" and w.key_param is None
        c = cc_write("T", "x")
        assert c.kind.is_writeish
        assert not read("T", "x").kind.is_writeish

    def test_str_rendering(self):
        assert str(read("T", "x")) == "r(T[x])"
        assert str(write_const("T", "row0")) == "w(T[#row0])"


class TestProgramSpec:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(SpecError):
            ProgramSpec("P", ("x",), (read("T", "y"),))

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(SpecError):
            ProgramSpec("P", ("x", "x"), ())

    def test_read_only_classification(self):
        reader = ProgramSpec("R", ("x",), (read("T", "x"),))
        assert reader.is_read_only and not reader.is_update_program
        writer = simple_program()
        assert writer.is_update_program and not writer.is_read_only

    def test_cc_write_does_not_make_program_an_updater(self):
        sfu_only = ProgramSpec("S", ("x",), (cc_write("T", "x"),))
        assert sfu_only.is_read_only
        assert sfu_only.writeish() == sfu_only.accesses

    def test_with_access_dedupes(self):
        program = simple_program()
        extra = write("T", "x", "v")
        once = program.with_access(extra)
        twice = once.with_access(extra)
        assert once.accesses == twice.accesses
        assert len(once.accesses) == 3

    def test_replace_access(self):
        program = simple_program()
        old = program.accesses[0]
        new = cc_write("T", "x", "v")
        replaced = program.replace_access(old, new)
        assert new in replaced.accesses and old not in replaced.accesses
        with pytest.raises(SpecError):
            program.replace_access(new, old)

    def test_tables_written(self):
        assert simple_program().tables_written() == frozenset({"U"})


class TestProgramSet:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecError):
            ProgramSet([simple_program(), simple_program()])

    def test_lookup_and_iteration(self):
        mix = ProgramSet([simple_program("A"), simple_program("B")])
        assert mix.names == ("A", "B")
        assert mix["A"].name == "A"
        assert "B" in mix and "C" not in mix
        assert len(list(mix)) == 2
        with pytest.raises(SpecError):
            mix["C"]

    def test_replace_returns_new_set(self):
        mix = ProgramSet([simple_program("A")])
        changed = mix.replace(mix["A"].with_access(write("W", "x")))
        assert "W" in changed["A"].tables_written()
        assert "W" not in mix["A"].tables_written()
        with pytest.raises(SpecError):
            mix.replace(simple_program("nope"))
