"""Executor tests: statements running against the engine."""

from __future__ import annotations

import pytest

from repro.engine import Database, Session
from repro.errors import SqlError
from repro.sqlmini import PreparedStatement, execute_sql


@pytest.fixture
def session(db: Database) -> Session:
    s = Session(db)
    s.begin("test")
    return s


class TestSelect:
    def test_select_by_primary_key(self, session: Session):
        result = execute_sql(
            session, "SELECT Balance FROM Saving WHERE CustomerId = 1"
        )
        assert result.rowcount == 1
        assert result.first == {"Balance": 100.0}

    def test_select_star_projects_all_columns(self, session: Session):
        result = execute_sql(
            session, "SELECT * FROM Saving WHERE CustomerId = 2"
        )
        assert result.first == {"CustomerId": 2, "Balance": 100.0}

    def test_select_into_binds_params(self, session: Session):
        params = {"N": "cust2"}
        execute_sql(
            session,
            "SELECT CustomerId INTO :x FROM Account WHERE Name = :N",
            params,
        )
        assert params["x"] == 2

    def test_select_into_missing_row_binds_none(self, session: Session):
        params = {"N": "nobody"}
        result = execute_sql(
            session,
            "SELECT CustomerId INTO :x FROM Account WHERE Name = :N",
            params,
        )
        assert result.rowcount == 0
        assert params["x"] is None

    def test_select_by_unique_column_uses_index(self, session: Session):
        params = {"c": 3}
        result = execute_sql(
            session,
            "SELECT Name FROM Account WHERE CustomerId = :c",
            params,
        )
        assert result.first == {"Name": "cust3"}

    def test_select_scan_with_predicate(self, session: Session):
        session.update("Saving", 2, {"Balance": 5.0})
        result = execute_sql(
            session, "SELECT CustomerId FROM Saving WHERE Balance < 50"
        )
        assert [r["CustomerId"] for r in result.rows] == [2]

    def test_residual_conjunct_filters_key_lookup(self, session: Session):
        result = execute_sql(
            session,
            "SELECT Balance FROM Saving WHERE CustomerId = 1 AND Balance > 500",
        )
        assert result.rowcount == 0

    def test_select_for_update_takes_lock(self, session: Session):
        execute_sql(
            session,
            "SELECT Balance FROM Saving WHERE CustomerId = 1 FOR UPDATE",
        )
        txn = session.transaction
        assert ("Saving", 1) in txn.sfu_rows

    def test_unbound_parameter_rejected(self, session: Session):
        with pytest.raises(SqlError):
            execute_sql(
                session, "SELECT Balance FROM Saving WHERE CustomerId = :x"
            )


class TestUpdate:
    def test_update_by_primary_key(self, session: Session):
        params = {"x": 1, "V": 25}
        result = execute_sql(
            session,
            "UPDATE Checking SET Balance = Balance + :V WHERE CustomerId = :x",
            params,
        )
        assert result.rowcount == 1
        check = execute_sql(
            session, "SELECT Balance FROM Checking WHERE CustomerId = 1"
        )
        assert check.first == {"Balance": 75.0}

    def test_update_missing_row_touches_nothing(self, session: Session):
        result = execute_sql(
            session,
            "UPDATE Checking SET Balance = 0 WHERE CustomerId = 404",
        )
        assert result.rowcount == 0
        assert not session.transaction.writes

    def test_update_by_predicate_scan(self, session: Session):
        result = execute_sql(
            session, "UPDATE Saving SET Balance = Balance * 2 WHERE Balance >= 100"
        )
        assert result.rowcount == 3
        check = execute_sql(session, "SELECT Balance FROM Saving WHERE CustomerId = 3")
        assert check.first == {"Balance": 200.0}

    def test_identity_update_kind_tagged(self, db: Database):
        kinds: list[str] = []
        session = Session(db, statement_hook=lambda kind, txn: kinds.append(kind))
        session.begin()
        stmt = PreparedStatement(
            "UPDATE Saving SET Balance = Balance WHERE CustomerId = 1"
        )
        assert stmt.kind == "identity-update"
        stmt.execute(session, {})
        assert kinds == ["identity-update"]

    def test_kind_override_for_materialized_conflict(self, db: Database):
        kinds: list[str] = []
        session = Session(db, statement_hook=lambda kind, txn: kinds.append(kind))
        session.begin()
        stmt = PreparedStatement(
            "UPDATE Saving SET Balance = Balance + 1 WHERE CustomerId = 1",
            kind="materialize-update",
        )
        stmt.execute(session, {})
        assert kinds == ["materialize-update"]

    def test_overdraft_penalty_expression(self, session: Session):
        params = {"x": 1, "V": 100}
        execute_sql(
            session,
            "UPDATE Checking SET Balance = Balance - (:V + 1) WHERE CustomerId = :x",
            params,
        )
        check = execute_sql(
            session, "SELECT Balance FROM Checking WHERE CustomerId = 1"
        )
        assert check.first == {"Balance": 50.0 - 101}


class TestInsertDelete:
    def test_insert_and_delete(self, session: Session):
        execute_sql(
            session,
            "INSERT INTO Account (Name, CustomerId) VALUES ('zoe', 99)",
        )
        found = execute_sql(
            session, "SELECT CustomerId FROM Account WHERE Name = 'zoe'"
        )
        assert found.first == {"CustomerId": 99}
        deleted = execute_sql(
            session, "DELETE FROM Account WHERE Name = 'zoe'"
        )
        assert deleted.rowcount == 1
        gone = execute_sql(
            session, "SELECT CustomerId FROM Account WHERE Name = 'zoe'"
        )
        assert gone.rowcount == 0


class TestPreparedStatements:
    def test_prepared_statement_reuse(self, db: Database):
        stmt = PreparedStatement(
            "UPDATE Saving SET Balance = Balance + :v WHERE CustomerId = :x"
        )
        for cid in (1, 2, 3):
            session = Session(db)
            session.begin()
            stmt.execute(session, {"x": cid, "v": cid * 10})
            session.commit()
        session = Session(db)
        session.begin()
        result = execute_sql(
            session, "SELECT Balance FROM Saving WHERE CustomerId = 3"
        )
        assert result.first == {"Balance": 130.0}

    def test_statement_str_is_valid_sql(self):
        stmt = PreparedStatement(
            "SELECT Balance INTO :b FROM Saving WHERE CustomerId = :x FOR UPDATE"
        )
        reparsed = PreparedStatement(str(stmt))
        assert str(reparsed) == str(stmt)
