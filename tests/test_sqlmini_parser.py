"""Parser tests for the mini SQL dialect."""

from __future__ import annotations

import pytest

from repro.errors import SqlError
from repro.sqlmini import (
    BinOp,
    ColumnRef,
    Delete,
    Insert,
    Literal,
    Param,
    Select,
    UnaryOp,
    Update,
    parse,
    parse_script,
)


class TestSelect:
    def test_paper_select_into(self):
        stmt = parse("SELECT CustomerId INTO :x FROM Account WHERE Name = :N")
        assert isinstance(stmt, Select)
        assert stmt.table == "Account"
        assert stmt.columns == ("CustomerId",)
        assert stmt.into == ("x",)
        assert stmt.where == BinOp("=", ColumnRef("Name"), Param("N"))
        assert not stmt.for_update

    def test_select_for_update(self):
        stmt = parse(
            "SELECT Balance INTO :b FROM Saving WHERE CustomerId = :x FOR UPDATE"
        )
        assert isinstance(stmt, Select)
        assert stmt.for_update

    def test_select_star(self):
        stmt = parse("SELECT * FROM Saving")
        assert stmt.columns == ("*",)
        assert stmt.where is None

    def test_select_multiple_columns_into(self):
        stmt = parse(
            "SELECT Name, CustomerId INTO :n, :c FROM Account WHERE Name = 'x'"
        )
        assert stmt.columns == ("Name", "CustomerId")
        assert stmt.into == ("n", "c")

    def test_into_count_mismatch_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a, b INTO :x FROM t")

    def test_keywords_case_insensitive(self):
        stmt = parse("select Balance from Saving where CustomerId = 1")
        assert isinstance(stmt, Select)
        assert stmt.table == "Saving"


class TestUpdate:
    def test_paper_conflict_update(self):
        stmt = parse("UPDATE Conflict SET Value = Value + 1 WHERE Id = :x")
        assert isinstance(stmt, Update)
        assert stmt.assignments == (
            ("Value", BinOp("+", ColumnRef("Value"), Literal(1))),
        )
        assert not stmt.is_identity

    def test_identity_update_detected(self):
        stmt = parse("UPDATE Saving SET Balance = Balance WHERE CustomerId = :x")
        assert isinstance(stmt, Update)
        assert stmt.is_identity

    def test_overdraft_penalty_expression(self):
        stmt = parse(
            "UPDATE Checking SET Balance = Balance - (:V + 1) "
            "WHERE CustomerId = :x"
        )
        assert isinstance(stmt, Update)
        (column, expr), = stmt.assignments
        assert column == "Balance"
        assert expr == BinOp(
            "-", ColumnRef("Balance"), BinOp("+", Param("V"), Literal(1))
        )

    def test_multiple_assignments(self):
        stmt = parse("UPDATE t SET a = 1, b = 2")
        assert len(stmt.assignments) == 2


class TestInsertDelete:
    def test_insert(self):
        stmt = parse("INSERT INTO Account (Name, CustomerId) VALUES (:n, :c)")
        assert isinstance(stmt, Insert)
        assert stmt.columns == ("Name", "CustomerId")
        assert stmt.values == (Param("n"), Param("c"))

    def test_insert_count_mismatch(self):
        with pytest.raises(SqlError):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_delete(self):
        stmt = parse("DELETE FROM Account WHERE Name = 'bob'")
        assert isinstance(stmt, Delete)
        assert stmt.where == BinOp("=", ColumnRef("Name"), Literal("bob"))


class TestExpressions:
    def test_precedence_multiplication_before_addition(self):
        stmt = parse("SELECT a FROM t WHERE x = 1 + 2 * 3")
        comparison = stmt.where
        assert comparison.right == BinOp(
            "+", Literal(1), BinOp("*", Literal(2), Literal(3))
        )

    def test_parentheses_override_precedence(self):
        stmt = parse("SELECT a FROM t WHERE x = (1 + 2) * 3")
        assert stmt.where.right == BinOp(
            "*", BinOp("+", Literal(1), Literal(2)), Literal(3)
        )

    def test_and_or_not(self):
        stmt = parse("SELECT a FROM t WHERE NOT x = 1 AND y = 2 OR z = 3")
        assert isinstance(stmt.where, BinOp) and stmt.where.op == "OR"
        assert stmt.where.left.op == "AND"
        assert isinstance(stmt.where.left.left, UnaryOp)

    def test_unary_minus(self):
        stmt = parse("SELECT a FROM t WHERE x = -5")
        assert stmt.where.right == UnaryOp("-", Literal(5))

    def test_string_literal_with_escaped_quote(self):
        stmt = parse("SELECT a FROM t WHERE n = 'O''Neil'")
        assert stmt.where.right == Literal("O'Neil")

    def test_float_literal(self):
        stmt = parse("SELECT a FROM t WHERE x >= 1.5")
        assert stmt.where == BinOp(">=", ColumnRef("x"), Literal(1.5))

    def test_not_equals_both_spellings(self):
        a = parse("SELECT a FROM t WHERE x != 1")
        b = parse("SELECT a FROM t WHERE x <> 1")
        assert a.where == b.where


class TestScriptsAndErrors:
    def test_parse_script_splits_statements(self):
        script = """
            SELECT a FROM t WHERE x = 1;
            UPDATE t SET a = 2 WHERE x = 1;
        """
        statements = parse_script(script)
        assert len(statements) == 2
        assert isinstance(statements[0], Select)
        assert isinstance(statements[1], Update)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t WHERE x = 1 bogus")

    def test_unknown_statement_rejected(self):
        with pytest.raises(SqlError):
            parse("DROP TABLE t")

    def test_bad_token_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t WHERE x = @nope")

    def test_unterminated_expression_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t WHERE x =")

    def test_roundtrip_str_reparses(self):
        for sql in [
            "SELECT Balance INTO :b FROM Saving WHERE CustomerId = :x FOR UPDATE",
            "UPDATE Conflict SET Value = Value + 1 WHERE Id = :x",
            "INSERT INTO Account (Name, CustomerId) VALUES (:n, 7)",
            "DELETE FROM Account WHERE Name = 'bob'",
        ]:
            assert parse(str(parse(sql))) == parse(sql)
