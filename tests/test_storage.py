"""Tests for schemas, tables, indexes and the catalog."""

from __future__ import annotations

import pytest

from repro.engine import Column, TableSchema
from repro.engine.storage import Catalog, Table
from repro.engine.versions import Version, freeze_row
from repro.errors import IntegrityError, SchemaError


def account_schema() -> TableSchema:
    return TableSchema(
        name="Account",
        columns=(Column("Name", "text"), Column("CustomerId", "int")),
        primary_key="Name",
        unique=("CustomerId",),
    )


class TestSchema:
    def test_unknown_column_type_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", "blob")

    def test_primary_key_must_be_a_column(self):
        with pytest.raises(SchemaError):
            TableSchema("T", (Column("a", "int"),), primary_key="b")

    def test_unique_must_be_a_column(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "T", (Column("a", "int"),), primary_key="a", unique=("zz",)
            )

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "T",
                (Column("a", "int"), Column("a", "text")),
                primary_key="a",
            )

    def test_validate_row_type_checks(self):
        schema = account_schema()
        with pytest.raises(IntegrityError):
            schema.validate_row({"Name": "x", "CustomerId": "not-an-int"})
        with pytest.raises(IntegrityError):
            schema.validate_row({"Name": "x"})  # missing column
        with pytest.raises(SchemaError):
            schema.validate_row({"Name": "x", "CustomerId": 1, "Extra": 0})

    def test_bool_is_not_an_int(self):
        schema = account_schema()
        with pytest.raises(IntegrityError):
            schema.validate_row({"Name": "x", "CustomerId": True})

    def test_nullable_column(self):
        schema = TableSchema(
            "T",
            (Column("a", "int"), Column("b", "text", nullable=True)),
            primary_key="a",
        )
        row = schema.validate_row({"a": 1, "b": None})
        assert row["b"] is None

    def test_numeric_accepts_int_and_float(self):
        col = Column("x", "numeric")
        col.check(1)
        col.check(1.5)
        with pytest.raises(IntegrityError):
            col.check("1.5")


class TestTable:
    def commit_version(self, table: Table, key, ts: int, value: dict | None):
        chain = table.chain_or_create(key)
        version = Version(ts, txid=ts, value=freeze_row(value))
        chain.append_committed(version)
        table.index_committed_version(key, version)

    def test_visible_row_and_scan(self):
        table = Table(account_schema())
        self.commit_version(table, "alice", 1, {"Name": "alice", "CustomerId": 7})
        self.commit_version(table, "bob", 2, {"Name": "bob", "CustomerId": 8})
        assert table.visible_row("alice", 1)["CustomerId"] == 7
        assert table.visible_row("bob", 1) is None
        rows = list(table.scan_visible(5))
        assert [key for key, _ in rows] == ["alice", "bob"]
        rows = list(table.scan_visible(5, lambda r: r["CustomerId"] == 8))
        assert [key for key, _ in rows] == ["bob"]

    def test_lookup_unique_by_secondary_index(self):
        table = Table(account_schema())
        self.commit_version(table, "alice", 1, {"Name": "alice", "CustomerId": 7})
        found = table.lookup_unique("CustomerId", 7, snapshot_ts=5)
        assert found is not None and found[0] == "alice"
        assert table.lookup_unique("CustomerId", 99, snapshot_ts=5) is None

    def test_lookup_unique_respects_snapshot(self):
        table = Table(account_schema())
        self.commit_version(table, "alice", 3, {"Name": "alice", "CustomerId": 7})
        assert table.lookup_unique("CustomerId", 7, snapshot_ts=2) is None

    def test_lookup_unique_ignores_stale_index_entries(self):
        # The superset index keeps old mappings; visibility must filter them.
        table = Table(account_schema())
        self.commit_version(table, "alice", 1, {"Name": "alice", "CustomerId": 7})
        self.commit_version(table, "alice", 4, {"Name": "alice", "CustomerId": 9})
        assert table.lookup_unique("CustomerId", 7, snapshot_ts=10) is None
        found = table.lookup_unique("CustomerId", 9, snapshot_ts=10)
        assert found is not None and found[0] == "alice"

    def test_lookup_by_primary_key_column(self):
        table = Table(account_schema())
        self.commit_version(table, "alice", 1, {"Name": "alice", "CustomerId": 7})
        found = table.lookup_unique("Name", "alice", snapshot_ts=5)
        assert found is not None and found[1]["CustomerId"] == 7

    def test_lookup_without_index_rejected(self):
        table = Table(
            TableSchema(
                "T", (Column("a", "int"), Column("b", "int")), primary_key="a"
            )
        )
        with pytest.raises(SchemaError):
            table.lookup_unique("b", 1, snapshot_ts=5)

    def test_unique_check_on_commit(self):
        table = Table(account_schema())
        self.commit_version(table, "alice", 1, {"Name": "alice", "CustomerId": 7})
        with pytest.raises(IntegrityError):
            table.check_unique_on_commit(
                "bob", {"Name": "bob", "CustomerId": 7}, as_of_ts=5
            )
        # Same key re-committing its own value is fine.
        table.check_unique_on_commit(
            "alice", {"Name": "alice", "CustomerId": 7}, as_of_ts=5
        )

    def test_tombstoned_rows_not_scanned(self):
        table = Table(account_schema())
        self.commit_version(table, "alice", 1, {"Name": "alice", "CustomerId": 7})
        self.commit_version(table, "alice", 2, None)
        assert list(table.scan_visible(5)) == []
        assert table.lookup_unique("CustomerId", 7, snapshot_ts=5) is None


class TestCatalog:
    def test_duplicate_table_rejected(self):
        with pytest.raises(SchemaError):
            Catalog([account_schema(), account_schema()])

    def test_unknown_table_rejected(self):
        catalog = Catalog([account_schema()])
        with pytest.raises(SchemaError):
            catalog.table("Nope")

    def test_add_table(self):
        catalog = Catalog([])
        catalog.add_table(account_schema())
        assert catalog.has_table("Account")
        assert catalog.table_names == ("Account",)
        with pytest.raises(SchemaError):
            catalog.add_table(account_schema())
