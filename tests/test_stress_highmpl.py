"""High-MPL threaded stress: MVSG verdicts and money conservation at ≥16
clients (ISSUE 2's lock-free-read engine under real contention).

Complements :mod:`tests.test_stress_serializability` (6 threads) by pushing
the striped-latch engine to CI's practical thread ceiling and adding a
*shadow ledger*: each worker accumulates the money delta its committed
programs report (DepositChecking +V, TransactSaving +V, WriteCheck −V or
−(V+1) when the overdraft penalty fired, Balance/Amalgamate 0), and the
final ``total_money`` must match exactly.  That catches lost updates and
torn commits even in runs whose MVSG happens to be acyclic.

The default size is CI-friendly; set ``REPRO_STRESS_FULL=1`` for a longer
soak (more threads, more transactions per thread).
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.analysis import SerializabilityChecker
from repro.engine import Database, EngineConfig, Session
from repro.errors import ApplicationRollback, TransactionAborted
from repro.smallbank import (
    PopulationConfig,
    build_database,
    customer_name,
    get_strategy,
    total_money,
)

FULL = os.environ.get("REPRO_STRESS_FULL", "") not in ("", "0")
THREADS = 24 if FULL else 16  # the issue's floor is MPL >= 16
TXNS_PER_THREAD = 30 if FULL else 8
CUSTOMERS = 6  # tiny hotspot: every thread collides constantly


def run_highmpl_mix(db: Database, txns, seed: int) -> tuple[int, float]:
    """Hammer the SmallBank mix from ``THREADS`` client threads.

    Returns ``(committed_programs, ledger_delta)`` where ``ledger_delta``
    is the net amount the committed programs claim to have created.
    Aborted/rolled-back programs contribute nothing — their effects must
    have vanished.
    """
    committed = [0] * THREADS
    deltas = [0.0] * THREADS
    failures: list[BaseException] = []

    def worker(idx: int) -> None:
        rng = random.Random(seed * 10_000 + idx)
        # Per-statement jitter so threads genuinely interleave (the
        # programs alone are microseconds long).
        jitter = lambda kind, txn: time.sleep(rng.random() * 0.0003)
        for _ in range(TXNS_PER_THREAD):
            session = Session(db, statement_hook=jitter)
            name = customer_name(rng.randint(1, CUSTOMERS))
            other = customer_name(rng.randint(1, CUSTOMERS))
            program = rng.choice(
                ["Balance", "DepositChecking", "TransactSaving",
                 "WriteCheck", "Amalgamate"]
            )
            value = round(rng.uniform(1.0, 60.0), 2)
            args = {
                "Balance": {"N": name},
                "DepositChecking": {"N": name, "V": value},
                "TransactSaving": {"N": name, "V": value},
                "WriteCheck": {"N": name, "V": value},
                "Amalgamate": {"N1": name, "N2": other},
            }[program]
            if program == "Amalgamate" and name == other:
                continue
            try:
                result = txns.run(session, program, args)
            except (TransactionAborted, ApplicationRollback):
                session.rollback()
                continue
            except BaseException as exc:  # pragma: no cover - diagnostics
                failures.append(exc)
                session.rollback()
                return
            committed[idx] += 1
            if program in ("DepositChecking", "TransactSaving"):
                deltas[idx] += value
            elif program == "WriteCheck":
                # run() returns True when the V+1 overdraft penalty fired.
                deltas[idx] -= value + 1.0 if result else value

    pool = [
        threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=300)
        assert not thread.is_alive(), "high-MPL stress worker hung"
    assert not failures, failures
    return sum(committed), sum(deltas)


def stress(config: EngineConfig, strategy_key: str, seed: int):
    db = build_database(
        config,
        PopulationConfig(customers=CUSTOMERS, min_saving=1000.0,
                         max_saving=1000.0, min_checking=1000.0,
                         max_checking=1000.0),
    )
    checker = SerializabilityChecker(db)
    before = total_money(db)
    txns = get_strategy(strategy_key).transactions()
    committed, delta = run_highmpl_mix(db, txns, seed)
    # The shadow ledger must balance under EVERY engine and strategy —
    # even plain SI's anomalies never lose or duplicate a single write.
    assert total_money(db) == pytest.approx(before + delta), (
        config.isolation, strategy_key
    )
    assert committed > THREADS  # the run made real progress
    return checker.report()


SERIALIZABLE_SETUPS = [
    ("s2pl", "base-si"),
    ("ssi", "base-si"),
    ("postgres", "materialize-wt"),
    ("postgres", "promote-wt-upd"),
    ("postgres", "materialize-bw"),
    ("postgres", "promote-bw-upd"),
    ("postgres", "materialize-all"),
    ("postgres", "promote-all"),
    ("commercial", "promote-wt-sfu"),
    ("commercial", "promote-bw-sfu"),
]


class TestHighMplSerializability:
    @pytest.mark.parametrize(
        "engine,strategy",
        SERIALIZABLE_SETUPS,
        ids=[f"{e}-{s}" for e, s in SERIALIZABLE_SETUPS],
    )
    def test_no_mvsg_cycle_and_ledger_conserved(self, engine, strategy):
        config = getattr(EngineConfig, engine)()
        report = stress(config, strategy, seed=11)
        assert report.serializable, (engine, strategy, report.describe())
        assert report.committed_count > THREADS

    def test_plain_si_conserves_money_even_when_not_serializable(self):
        """Plain SI makes no serializability promise at this contention —
        but the ledger (asserted inside ``stress``) must still balance."""
        report = stress(EngineConfig.postgres(), "base-si", seed=11)
        assert report.committed_count > THREADS
