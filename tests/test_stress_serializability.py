"""Threaded stress tests: MVSG verdicts under real concurrency.

A small hotspot and many client threads hammer the SmallBank mix.  Under
plain SI the checker is expected to find non-serializable histories (the
whole point of the paper); under every fixing strategy — and under the
SSI engine — all committed histories must be serializable, every time.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.analysis import SerializabilityChecker
from repro.engine import Database, EngineConfig, Session
from repro.errors import ApplicationRollback, TransactionAborted
from repro.smallbank import (
    PopulationConfig,
    build_database,
    customer_name,
    get_strategy,
    total_money,
)

CUSTOMERS = 4  # tiny hotspot: everyone collides
THREADS = 6
TXNS_PER_THREAD = 30


def run_mix(db: Database, txns, seed: int) -> None:
    """Each thread runs a random SmallBank mix, retrying nothing: aborts
    are simply abandoned (the checker only examines committed history)."""

    def worker(worker_seed: int) -> None:
        rng = random.Random(worker_seed)
        # Per-statement jitter: without it the transactions are so short
        # (microseconds) that threads barely overlap and no interesting
        # interleavings occur.
        jitter = lambda kind, txn: time.sleep(rng.random() * 0.0005)
        for _ in range(TXNS_PER_THREAD):
            session = Session(db, statement_hook=jitter)
            name = customer_name(rng.randint(1, CUSTOMERS))
            other = customer_name(rng.randint(1, CUSTOMERS))
            program = rng.choice(
                ["Balance", "DepositChecking", "TransactSaving",
                 "WriteCheck", "Amalgamate"]
            )
            args = {
                "Balance": {"N": name},
                "DepositChecking": {"N": name, "V": rng.uniform(1, 50)},
                "TransactSaving": {"N": name, "V": rng.uniform(-20, 50)},
                "WriteCheck": {"N": name, "V": rng.uniform(1, 50)},
                "Amalgamate": {"N1": name, "N2": other},
            }[program]
            if program == "Amalgamate" and name == other:
                continue
            try:
                txns.run(session, program, args)
            except (TransactionAborted, ApplicationRollback):
                session.rollback()

    pool = [
        threading.Thread(target=worker, args=(seed * 1000 + i,))
        for i in range(THREADS)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=120)
        assert not thread.is_alive(), "stress worker hung"


def stress(config: EngineConfig, strategy_key: str, seed: int):
    db = build_database(
        config,
        PopulationConfig(customers=CUSTOMERS, min_saving=500.0,
                         max_saving=500.0, min_checking=500.0,
                         max_checking=500.0),
    )
    checker = SerializabilityChecker(db)
    txns = get_strategy(strategy_key).transactions()
    run_mix(db, txns, seed)
    return db, checker.report()


class TestStrategiesUnderRealConcurrency:
    @pytest.mark.parametrize(
        "key",
        [
            "materialize-wt",
            "promote-wt-upd",
            "materialize-bw",
            "promote-bw-upd",
            "materialize-all",
            "promote-all",
        ],
    )
    def test_strategy_keeps_history_serializable_postgres(self, key):
        for seed in (1, 2):
            _db, report = stress(EngineConfig.postgres(), key, seed)
            assert report.serializable, (key, seed, report.describe())
            assert report.committed_count > 0

    @pytest.mark.parametrize("key", ["promote-wt-sfu", "promote-bw-sfu"])
    def test_sfu_strategies_on_commercial(self, key):
        for seed in (1, 2):
            _db, report = stress(EngineConfig.commercial(), key, seed)
            assert report.serializable, (key, seed, report.describe())

    def test_ssi_engine_keeps_history_serializable(self):
        for seed in (1, 2):
            _db, report = stress(EngineConfig.ssi(), "base-si", seed)
            assert report.serializable, (seed, report.describe())

    def test_s2pl_engine_keeps_history_serializable(self):
        _db, report = stress(EngineConfig.s2pl(), "base-si", 3)
        assert report.serializable, report.describe()

    def test_plain_si_eventually_shows_anomalies(self):
        """Not guaranteed per seed, so try a few: at least one seeded run
        must produce a non-serializable committed history under plain SI —
        otherwise the benchmark would not be measuring anything."""
        found = False
        for seed in range(1, 9):
            _db, report = stress(EngineConfig.postgres(), "base-si", seed)
            if not report.serializable:
                found = True
                assert "dangerous-structure" in report.anomalies
                break
        assert found, "no anomaly in 8 seeded stress runs — suspicious"


class TestMoneyConservation:
    def test_deposits_and_transfers_balance_out(self):
        """With only money-conserving programs (no WriteCheck penalties or
        deposits), the total is invariant under any strategy and engine."""
        for key in ("base-si", "promote-all", "materialize-all"):
            db = build_database(
                EngineConfig.postgres(),
                PopulationConfig(customers=CUSTOMERS, min_saving=10_000.0,
                                 max_saving=10_000.0, min_checking=10_000.0,
                                 max_checking=10_000.0),
            )
            before = total_money(db)
            txns = get_strategy(key).transactions()
            rng = random.Random(42)

            def worker() -> None:
                for _ in range(20):
                    session = Session(db)
                    a = customer_name(rng.randint(1, CUSTOMERS))
                    b = customer_name(rng.randint(1, CUSTOMERS))
                    if a == b:
                        continue
                    try:
                        txns.run(session, "Amalgamate", {"N1": a, "N2": b})
                    except (TransactionAborted, ApplicationRollback):
                        session.rollback()

            pool = [threading.Thread(target=worker) for _ in range(4)]
            for t in pool:
                t.start()
            for t in pool:
                t.join(timeout=60)
            assert total_money(db) == pytest.approx(before), key
