"""TPC-C SDG analysis — the paper's canonical safe-on-SI application.

"the experts in the Transaction Processing Council could not find any
non-serializable executions when the TPC-C benchmark executes on a
platform using SI ... [TODS 2005] proves that the TPC-C benchmark has
every execution serializable on an SI-based platform" (Sections I–II).
"""

from __future__ import annotations

import pytest

from repro.apps.tpcc import (
    DELIVERY,
    NEW_ORDER,
    ORDER_STATUS,
    PAYMENT,
    STOCK_LEVEL,
    tpcc_sdg,
    tpcc_specs,
)
from repro.core import build_sdg


@pytest.fixture(scope="module")
def sdg():
    return tpcc_sdg(column_granularity=True)


class TestTpccIsSiSerializable:
    def test_no_dangerous_structure(self, sdg):
        assert sdg.dangerous_structures() == ()
        assert sdg.is_si_serializable()

    def test_vulnerable_edges_only_from_read_only_programs(self, sdg):
        read_only = {"OrderStatus", "StockLevel"}
        for source, _target in sdg.vulnerable_edges():
            assert source in read_only
        # And there ARE vulnerable edges: safety comes from structure,
        # not from the absence of anti-dependencies.
        assert len(sdg.vulnerable_edges()) >= 4

    def test_updaters_have_no_vulnerable_out_edges(self, sdg):
        for source in ("NewOrder", "Payment", "Delivery"):
            for target in sdg.nodes:
                assert not sdg.is_vulnerable(source, target), (source, target)

    def test_order_handoff_protected_by_shared_write(self, sdg):
        """Delivery consumes the order row NewOrder created: when the
        parameters coincide the write-write conflict protects the pair."""
        edge = sdg.edge("Delivery", "NewOrder")
        assert edge is not None and not edge.vulnerable

    def test_new_order_payment_disjoint_columns(self, sdg):
        """NewOrder reads customer discount/credit; Payment writes
        balance/ytd — same rows, no dataflow: the TODS column argument."""
        edge = sdg.edge("NewOrder", "Payment")
        assert edge is None or not edge.vulnerable


class TestGranularityMatters:
    def test_row_granularity_is_conservative(self):
        coarse = tpcc_sdg(column_granularity=False)
        assert not coarse.is_si_serializable()
        # The spurious pivot is NewOrder (its customer/warehouse reads
        # collide with Payment's writes at row level).
        assert "NewOrder" in coarse.pivots()

    def test_column_granularity_never_adds_conflicts(self):
        """Refining granularity can only remove rw/wr conflicts."""
        fine = tpcc_sdg(column_granularity=True)
        coarse = tpcc_sdg(column_granularity=False)
        for source, target in fine.vulnerable_edges():
            assert coarse.has_edge(source, target)
        assert set(fine.vulnerable_edges()) <= set(coarse.vulnerable_edges())

    def test_smallbank_unaffected_by_granularity(self):
        """SmallBank conflicts are all on the Balance column, so both
        granularities agree — Figure 1 is granularity-robust."""
        from repro.smallbank import smallbank_specs

        fine = build_sdg(smallbank_specs(), column_granularity=True)
        coarse = build_sdg(smallbank_specs(), column_granularity=False)
        assert fine.vulnerable_edges() == coarse.vulnerable_edges()
        assert [str(s) for s in fine.dangerous_structures()] == [
            "Balance -(v)-> WriteCheck -(v)-> TransactSaving"
        ]


class TestSpecShapes:
    def test_five_programs(self):
        assert tpcc_specs().names == (
            "NewOrder",
            "Payment",
            "OrderStatus",
            "Delivery",
            "StockLevel",
        )

    def test_read_only_classification(self):
        assert ORDER_STATUS.is_read_only
        assert STOCK_LEVEL.is_read_only
        for spec in (NEW_ORDER, PAYMENT, DELIVERY):
            assert spec.is_update_program

    def test_new_order_is_read_modify_write_on_district_and_stock(self):
        reads = {(a.table, a.key_param) for a in NEW_ORDER.reads()}
        writes = {(a.table, a.key_param) for a in NEW_ORDER.writes()}
        assert ("District", "d") in reads & writes
        assert ("Stock", "i") in reads & writes
