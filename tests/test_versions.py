"""Tests for version chains and snapshot visibility."""

from __future__ import annotations

import pytest

from repro.engine.versions import UncommittedVersion, Version, VersionChain, freeze_row


def chain_with(*history: tuple[int, int, dict | None]) -> VersionChain:
    chain = VersionChain()
    for commit_ts, txid, value in history:
        chain.append_committed(Version(commit_ts, txid, freeze_row(value)))
    return chain


def test_empty_chain_sees_nothing():
    chain = VersionChain()
    assert chain.visible(10) is None
    assert chain.latest() is None
    assert chain.latest_commit_ts() == 0
    assert not chain.exists_at(10)


def test_visibility_picks_newest_version_at_or_before_snapshot():
    chain = chain_with(
        (2, 1, {"v": "a"}),
        (5, 2, {"v": "b"}),
        (9, 3, {"v": "c"}),
    )
    assert chain.visible(1) is None
    assert chain.visible(2).value["v"] == "a"
    assert chain.visible(4).value["v"] == "a"
    assert chain.visible(5).value["v"] == "b"
    assert chain.visible(8).value["v"] == "b"
    assert chain.visible(100).value["v"] == "c"


def test_tombstone_is_visible_but_marks_row_dead():
    chain = chain_with((2, 1, {"v": "a"}), (5, 2, None))
    assert chain.exists_at(4)
    assert not chain.exists_at(5)
    version = chain.visible(6)
    assert version is not None and version.is_tombstone


def test_commit_timestamps_must_increase():
    chain = chain_with((5, 1, {"v": "a"}))
    with pytest.raises(ValueError):
        chain.append_committed(Version(3, 2, freeze_row({"v": "b"})))


def test_successor_of_returns_next_version():
    chain = chain_with((2, 1, {"v": "a"}), (5, 2, {"v": "b"}), (9, 3, {"v": "c"}))
    assert chain.successor_of(0).commit_ts == 2
    assert chain.successor_of(2).commit_ts == 5
    assert chain.successor_of(5).commit_ts == 9
    assert chain.successor_of(9) is None


def test_version_at_exact_timestamp():
    chain = chain_with((2, 1, {"v": "a"}), (5, 2, {"v": "b"}))
    assert chain.version_at(5).value["v"] == "b"
    assert chain.version_at(3) is None
    assert chain.version_at(99) is None


def test_frozen_rows_are_read_only():
    frozen = freeze_row({"v": 1})
    with pytest.raises(TypeError):
        frozen["v"] = 2  # type: ignore[index]
    assert freeze_row(None) is None
    assert freeze_row(frozen) is frozen


def test_uncommitted_version_slot():
    chain = chain_with((2, 1, {"v": "a"}))
    chain.uncommitted = UncommittedVersion(7, freeze_row({"v": "pending"}))
    # Uncommitted data never affects snapshot visibility.
    assert chain.visible(100).value["v"] == "a"
    assert len(chain) == 1
