"""Tests for the logical write-ahead log."""

from __future__ import annotations

import pytest

from repro.engine import Database, Session
from repro.engine.wal import WalRecord, WriteAheadLog


class TestWalStructure:
    def test_records_ordered_by_commit_ts(self):
        wal = WriteAheadLog()
        wal.append(WalRecord(1, 10, "a", (("T", 1),)))
        wal.append(WalRecord(5, 11, "b", (("T", 2),)))
        with pytest.raises(ValueError):
            wal.append(WalRecord(5, 12, "c", ()))
        with pytest.raises(ValueError):
            wal.append(WalRecord(3, 13, "d", ()))
        assert [r.commit_ts for r in wal] == [1, 5]
        assert len(wal) == 2

    def test_records_for_label(self):
        wal = WriteAheadLog()
        wal.append(WalRecord(1, 10, "Balance", ()))
        wal.append(WalRecord(2, 11, "WriteCheck", ()))
        wal.append(WalRecord(3, 12, "Balance", ()))
        assert len(wal.records_for("Balance")) == 2
        assert wal.records_for("Nothing") == ()


class TestWalFromEngine:
    def test_update_transactions_log_their_rows(self, db: Database):
        session = Session(db)
        session.begin("move")
        session.update("Saving", 1, {"Balance": 0.0})
        session.update("Checking", 2, {"Balance": 0.0})
        session.commit()
        (record,) = db.wal.records
        assert record.label == "move"
        assert record.rows == (("Saving", 1), ("Checking", 2))
        assert record.commit_ts == session.txn.commit_ts

    def test_aborted_transactions_log_nothing(self, db: Database):
        session = Session(db)
        session.begin()
        session.update("Saving", 1, {"Balance": 0.0})
        session.rollback()
        assert len(db.wal) == 0

    def test_log_order_matches_commit_order(self, db: Database):
        for cid in (3, 1, 2):
            session = Session(db)
            session.begin(f"t{cid}")
            session.update("Saving", cid, {"Balance": float(cid)})
            session.commit()
        labels = [record.label for record in db.wal]
        assert labels == ["t3", "t1", "t2"]
        timestamps = [record.commit_ts for record in db.wal]
        assert timestamps == sorted(timestamps)
