"""Tests for mixes, hotspot parameter generation and statistics."""

from __future__ import annotations

import random

import pytest

from repro.engine import EngineConfig
from repro.smallbank import PROGRAM_NAMES, PopulationConfig, build_database
from repro.smallbank.strategies import get_strategy
from repro.workload import (
    BALANCE60_MIX,
    UNIFORM_MIX,
    HotspotConfig,
    ParameterGenerator,
    RunStats,
    ThreadedDriver,
    ThreadedDriverConfig,
    TransactionMix,
    get_mix,
    mean_and_ci,
)
from repro.workload.stats import AggregateResult


class TestMix:
    def test_uniform_mix_covers_all_programs(self):
        rng = random.Random(1)
        seen = {UNIFORM_MIX.choose(rng) for _ in range(500)}
        assert seen == set(PROGRAM_NAMES)

    def test_balance60_mix_is_balance_heavy(self):
        rng = random.Random(1)
        picks = [BALANCE60_MIX.choose(rng) for _ in range(5000)]
        fraction = picks.count("Balance") / len(picks)
        assert 0.55 < fraction < 0.65

    def test_get_mix_unknown(self):
        with pytest.raises(KeyError):
            get_mix("nope")

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            TransactionMix("bad", {"NotAProgram": 1.0})
        with pytest.raises(ValueError):
            TransactionMix("bad", {})


class TestHotspot:
    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotConfig(customers=10, hotspot=11)
        with pytest.raises(ValueError):
            HotspotConfig(customers=10, hotspot=5, hotspot_probability=1.5)

    def test_ninety_percent_in_hotspot(self):
        config = HotspotConfig(customers=1000, hotspot=100)
        generator = ParameterGenerator(config, random.Random(7))
        picks = [generator.pick_customer() for _ in range(10_000)]
        in_hot = sum(1 for cid in picks if cid <= 100)
        assert 0.88 < in_hot / len(picks) < 0.92
        assert all(1 <= cid <= 1000 for cid in picks)

    def test_hotspot_covering_everything(self):
        config = HotspotConfig(customers=10, hotspot=10)
        generator = ParameterGenerator(config, random.Random(7))
        assert all(1 <= generator.pick_customer() <= 10 for _ in range(100))

    def test_amalgamate_customers_distinct(self):
        config = HotspotConfig(customers=5, hotspot=5)
        generator = ParameterGenerator(config, random.Random(7))
        for _ in range(200):
            first, second = generator.pick_two_customers()
            assert first != second

    def test_args_for_every_program(self):
        config = HotspotConfig(customers=100, hotspot=10)
        generator = ParameterGenerator(config, random.Random(7))
        for program in PROGRAM_NAMES:
            args = generator.args_for(program)
            if program == "Amalgamate":
                assert {"N1", "N2"} <= set(args)
            else:
                assert "N" in args
        with pytest.raises(ValueError):
            generator.args_for("Nope")


class TestStats:
    def test_window_filtering(self):
        stats = RunStats(window_start=1.0, window_end=2.0)
        stats.record_commit("Balance", 0.01, at=0.5)  # ramp-up: ignored
        stats.record_commit("Balance", 0.01, at=1.5)
        stats.record_commit("Balance", 0.03, at=2.5)  # after window
        assert stats.total_commits == 1
        assert stats.tps == pytest.approx(1.0)
        assert stats.mean_response_time == pytest.approx(0.01)

    def test_abort_rate_excludes_rollbacks(self):
        stats = RunStats(window_start=0.0, window_end=1.0)
        stats.record_commit("WriteCheck", 0.01, at=0.5)
        stats.record_abort("WriteCheck", "serialization", at=0.5)
        stats.record_rollback("WriteCheck", at=0.5)
        assert stats.abort_rate("WriteCheck") == pytest.approx(0.5)
        assert stats.abort_rate() == pytest.approx(0.5)
        assert stats.abort_count() == 1

    def test_mean_and_ci(self):
        mean, half = mean_and_ci([10.0, 10.0, 10.0])
        assert mean == 10.0 and half == 0.0
        mean, half = mean_and_ci([8.0, 12.0])
        assert mean == 10.0 and half > 0
        assert mean_and_ci([]) == (0.0, 0.0)
        assert mean_and_ci([5.0]) == (5.0, 0.0)

    def test_aggregate_result(self):
        a = RunStats(window_start=0.0, window_end=1.0)
        b = RunStats(window_start=0.0, window_end=1.0)
        for _ in range(10):
            a.record_commit("Balance", 0.01, at=0.5)
        for _ in range(20):
            b.record_commit("Balance", 0.01, at=0.5)
        agg = AggregateResult([a, b])
        assert agg.tps == pytest.approx(15.0)
        assert agg.tps_ci > 0
        assert agg.commits_of("Balance") == pytest.approx(15.0)
        assert "TPS" in agg.describe()


class TestThreadedDriver:
    def test_driver_produces_commits(self):
        config = ThreadedDriverConfig(
            mpl=3, customers=50, hotspot=10, duration=0.3, seed=5
        )
        db = build_database(
            EngineConfig.postgres(), PopulationConfig(customers=50)
        )
        driver = ThreadedDriver(
            db, get_strategy("base-si").transactions(), config
        )
        stats = driver.run()
        assert stats.total_commits > 0
        assert stats.mean_response_time > 0
